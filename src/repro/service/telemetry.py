"""Per-session and service-wide telemetry for the streaming codec server.

Counters follow the decoder's own vocabulary: a frame is *corrected*
when the decoder repaired at least one bit, *detected* when it raised
the detected-uncorrectable flag, and *accepted* otherwise (delivered
with no anomaly).  Latency is sampled per request into a bounded
reservoir, so percentile queries stay O(reservoir) regardless of how
long the server has been up.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Deque, Dict, Optional

import numpy as np


class LatencyReservoir:
    """Sliding window of the most recent per-request latencies (µs)."""

    def __init__(self, maxlen: int = 8192):
        self._samples: Deque[float] = deque(maxlen=maxlen)

    def record(self, latency_us: float) -> None:
        self._samples.append(float(latency_us))

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the window, 0.0 when empty."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.fromiter(self._samples, dtype=float), q))

    def snapshot(self) -> Dict[str, float]:
        return {
            "samples": len(self._samples),
            "p50_us": round(self.percentile(50.0), 1),
            "p99_us": round(self.percentile(99.0), 1),
        }


class SessionTelemetry:
    """Counters and latency percentiles for one codec session."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self.started_at = clock()
        self.requests: Counter = Counter()        # per op: "encode"/"decode"
        self.frames: Counter = Counter()          # per op
        self.frames_corrected = 0                 # decoder repaired >= 1 bit
        self.frames_detected = 0                  # detected-uncorrectable flag
        self.frames_accepted = 0                  # no anomaly at all
        self.bits_corrected = 0
        self.soft_frames_decoded = 0              # frames through the soft path
        self.soft_frames_corrected = 0            # soft path repaired >= 1 bit
        self.batches = 0
        self.batch_frames_max = 0
        self.flush_reasons: Counter = Counter()   # "size" / "deadline" / "drain"
        self.latency = LatencyReservoir()

    def record_request(self, op: str, n_frames: int) -> None:
        self.requests[op] += 1
        self.frames[op] += n_frames

    def record_batch(self, op: str, n_frames: int, reason: str) -> None:
        self.batches += 1
        self.batch_frames_max = max(self.batch_frames_max, n_frames)
        self.flush_reasons[reason] += 1

    def record_decode_outcome(
        self,
        corrected_errors: np.ndarray,
        detected_uncorrectable: np.ndarray,
        soft: bool = False,
    ) -> None:
        corrected = np.asarray(corrected_errors)
        detected = np.asarray(detected_uncorrectable, dtype=bool)
        corrected_frames = (corrected > 0) & ~detected
        self.frames_corrected += int(corrected_frames.sum())
        self.frames_detected += int(detected.sum())
        self.frames_accepted += int((~detected & (corrected == 0)).sum())
        self.bits_corrected += int(corrected.sum())
        if soft:
            self.soft_frames_decoded += int(corrected.size)
            self.soft_frames_corrected += int(corrected_frames.sum())

    def record_latency_us(self, latency_us: float) -> None:
        self.latency.record(latency_us)

    def snapshot(self) -> Dict:
        elapsed = max(self._clock() - self.started_at, 1e-9)
        total_frames = sum(self.frames.values())
        mean_batch = (total_frames / self.batches) if self.batches else 0.0
        return {
            "uptime_s": round(elapsed, 3),
            "requests": dict(self.requests),
            "frames": dict(self.frames),
            "throughput_fps": round(total_frames / elapsed, 1),
            "corrected_frames": self.frames_corrected,
            "detected_frames": self.frames_detected,
            "accepted_frames": self.frames_accepted,
            "corrected_bits": self.bits_corrected,
            "soft_decoded_frames": self.soft_frames_decoded,
            "soft_corrected_frames": self.soft_frames_corrected,
            "batches": self.batches,
            "mean_batch_frames": round(mean_batch, 2),
            "max_batch_frames": self.batch_frames_max,
            "flush_reasons": dict(self.flush_reasons),
            "latency": self.latency.snapshot(),
        }


def _active_backend_name() -> Optional[str]:
    """The kernel backend an unqualified decode resolves to right now.

    Reported in STATS so operators can confirm which engine a server
    (or each pool worker — the env round-trips through the fork) is
    actually decoding with.  ``None`` if resolution itself fails (e.g.
    ``REPRO_BACKEND`` names an unusable backend).
    """
    try:
        from repro.backends import default_backend

        return default_backend().name
    except Exception:
        return None


class ServiceTelemetry:
    """Aggregates per-session telemetry into the stats-endpoint payload."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self.started_at = clock()
        self.connections_total = 0
        self.connections_open = 0
        self.protocol_errors = 0
        self._sessions: Dict[int, "SessionTelemetry"] = {}

    def session(self, session_id: int) -> SessionTelemetry:
        if session_id not in self._sessions:
            self._sessions[session_id] = SessionTelemetry(self._clock)
        return self._sessions[session_id]

    def connection_opened(self) -> None:
        self.connections_total += 1
        self.connections_open += 1

    def connection_closed(self) -> None:
        self.connections_open -= 1

    def snapshot(self, session_labels: Optional[Dict[int, str]] = None) -> Dict:
        sessions = {}
        for sid, telemetry in sorted(self._sessions.items()):
            entry = telemetry.snapshot()
            if session_labels and sid in session_labels:
                entry["config"] = session_labels[sid]
            sessions[str(sid)] = entry
        total_frames = sum(
            sum(t.frames.values()) for t in self._sessions.values()
        )
        elapsed = max(self._clock() - self.started_at, 1e-9)
        return {
            "uptime_s": round(elapsed, 3),
            "connections_total": self.connections_total,
            "connections_open": self.connections_open,
            "protocol_errors": self.protocol_errors,
            "frames_total": total_frames,
            "throughput_fps": round(total_frames / elapsed, 1),
            "backend": _active_backend_name(),
            "sessions": sessions,
        }


def rollup_worker_snapshots(front: Dict, worker_snapshots) -> Dict:
    """Merge per-worker telemetry snapshots into one stats payload.

    ``front`` is the front end's own :meth:`ServiceTelemetry.snapshot`
    (connections and protocol errors are observed there; session frame
    counters live in the workers).  Each worker snapshot is the worker's
    ``ServiceTelemetry.snapshot`` augmented with ``index``/``pid``/
    ``restarts``/``ready`` by the pool.  The rollup keeps the flat
    single-process shape — ``frames_total`` and ``throughput_fps`` are
    sums, ``sessions`` is the union with each entry tagged by its owning
    worker — and adds a ``workers`` array, so a STATS scraper written
    against the single-process server keeps working and tests can check
    the invariant *rollup == sum of per-worker counters* directly.
    """
    merged = dict(front)
    merged["mode"] = "pool"
    sessions: Dict[str, Dict] = {}
    frames_total = 0
    throughput = 0.0
    workers = []
    for snap in worker_snapshots:
        summary = {
            "index": snap.get("index"),
            "pid": snap.get("pid"),
            "restarts": snap.get("restarts", 0),
            "ready": snap.get("ready", True),
            "uptime_s": snap.get("uptime_s", 0.0),
            "frames_total": snap.get("frames_total", 0),
            "throughput_fps": snap.get("throughput_fps", 0.0),
            "backend": snap.get("backend"),
            "sessions": sorted(int(sid) for sid in snap.get("sessions", {})),
        }
        workers.append(summary)
        frames_total += summary["frames_total"]
        throughput += summary["throughput_fps"]
        for sid, entry in snap.get("sessions", {}).items():
            tagged = dict(entry)
            tagged["worker"] = snap.get("index")
            sessions[str(sid)] = tagged
    merged["workers"] = sorted(workers, key=lambda w: (w["index"] is None, w["index"]))
    merged["frames_total"] = frames_total
    merged["throughput_fps"] = round(throughput, 1)
    merged["sessions"] = {sid: sessions[sid] for sid in sorted(sessions, key=int)}
    return merged
