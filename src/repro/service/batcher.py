"""Micro-batching scheduler: coalesce concurrent requests into one kernel call.

The PR 1 bit-packed kernels amortise beautifully — a batch-4096 decode
costs ~0.06 µs/frame where a batch-1 call costs >100 µs — but an online
server receives requests one at a time.  The :class:`MicroBatcher`
bridges the two regimes: requests for the same (session, op) lane are
queued, and the lane flushes as one ``encode_batch`` /
``decode_batch_detailed`` call when either

* the lane has accumulated ``max_batch`` frames (**size flush**), or
* ``max_delay_us`` has elapsed since the oldest queued frame arrived
  (**deadline flush** — the latency bound).

Backpressure is a hard bound on queued frames per lane
(``max_pending_frames``): ``submit`` awaits capacity before enqueueing,
so a slow kernel propagates as client-visible latency instead of
unbounded memory growth, and ``try_submit`` refuses immediately with
:class:`~repro.errors.BackpressureError` for callers that prefer
load-shedding.

Batches are concatenated in arrival order and results are sliced back
row-for-row, so decode outputs are bit-identical to calling the batch
kernel directly on each request (decoding is deterministic; batch
composition cannot change it).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

import numpy as np

from repro.coding.decoders.base import BatchDecodeResult
from repro.errors import BackpressureError
from repro.obs.tracing import current_trace_id, get_tracer, trace_scope
from repro.service.session import CodecSession

from collections import deque


@dataclass(frozen=True)
class BatchPolicy:
    """Flush and admission rules of one scheduler lane.

    Attributes
    ----------
    max_batch : int
        Flush as soon as at least this many frames are queued.  A lane
        flushes *everything* queued at flush time, so a single
        multi-frame request can push one batch past ``max_batch``; the
        hard bound on batch size is ``max_pending_frames``.
    max_delay_us : float
        Upper bound on how long the oldest queued frame may wait before
        a deadline flush — the knob trading latency for batch size.
    max_pending_frames : int
        Backpressure bound: frames queued but not yet flushed.
    """

    max_batch: int = 256
    max_delay_us: float = 200.0
    max_pending_frames: int = 8192

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_us < 0:
            raise ValueError(f"max_delay_us must be >= 0, got {self.max_delay_us}")
        if self.max_pending_frames < self.max_batch:
            raise ValueError(
                "max_pending_frames must be >= max_batch "
                f"({self.max_pending_frames} < {self.max_batch})"
            )


#: A lane kernel: (batch, width) block in, array or BatchDecodeResult out.
LaneKernel = Callable[[np.ndarray], object]


class _Lane:
    """One (session, op) queue with its flush timer and capacity gate."""

    __slots__ = (
        "kernel", "policy", "telemetry", "op", "loop", "items",
        "pending_frames", "timer", "capacity_waiters",
    )

    def __init__(self, kernel, policy, telemetry, op, loop):
        self.kernel: LaneKernel = kernel
        self.policy = policy
        self.telemetry = telemetry
        self.op = op
        self.loop = loop
        self.items: Deque[Tuple[np.ndarray, asyncio.Future, float, Optional[str]]] = deque()
        self.pending_frames = 0
        self.timer: Optional[asyncio.TimerHandle] = None
        self.capacity_waiters: Deque[asyncio.Future] = deque()

    # -- admission ------------------------------------------------------
    def has_capacity(self, n_frames: int) -> bool:
        return self.pending_frames + n_frames <= self.policy.max_pending_frames

    async def wait_for_capacity(self, n_frames: int) -> None:
        while not self.has_capacity(n_frames):
            waiter = self.loop.create_future()
            self.capacity_waiters.append(waiter)
            await waiter

    def _release_capacity(self) -> None:
        while self.capacity_waiters:
            waiter = self.capacity_waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)

    # -- enqueue + flush ------------------------------------------------
    def enqueue(
        self,
        frames: np.ndarray,
        arrival: Optional[float] = None,
        trace: Optional[str] = None,
    ) -> asyncio.Future:
        future = self.loop.create_future()
        # Latency is measured from *arrival* (before any backpressure
        # wait), so a saturated lane shows up in the percentiles.
        self.items.append(
            (frames, future, time.perf_counter() if arrival is None else arrival, trace)
        )
        self.pending_frames += len(frames)
        if self.pending_frames >= self.policy.max_batch:
            self.flush("size")
        elif self.timer is None:
            self.timer = self.loop.call_later(
                self.policy.max_delay_us * 1e-6, self.flush, "deadline"
            )
        return future

    def flush(self, reason: str) -> None:
        """Run the kernel on everything queued and complete the futures."""
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None
        if not self.items:
            return
        items = self.items
        self.items = deque()
        self.pending_frames = 0
        self._release_capacity()

        traced = [trace for _, _, _, trace in items if trace is not None]
        flush_started = time.perf_counter()
        try:
            blocks = [frames for frames, _, _, _ in items]
            batch = blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=0)
            kernel_started = time.perf_counter()
            # The scope makes the batch's trace ambient for the kernel
            # call, so the backend-profiling wrapper can tag its spans.
            with trace_scope(traced[0] if traced else None):
                result = self.kernel(batch)
        except Exception as exc:
            # Covers concatenation too: a malformed block must fail its
            # whole cohort's futures, never strand them (this runs from
            # timer callbacks, where an escaping exception would only
            # reach the event-loop exception handler).
            for _, future, _, _ in items:
                if not future.done():
                    future.set_exception(exc)
            return
        if self.telemetry is not None:
            self.telemetry.record_batch(self.op, len(batch), reason)
        completed = time.perf_counter()
        if traced:
            tracer = get_tracer()
            kernel_us = (completed - kernel_started) * 1e6
            assemble_us = (kernel_started - flush_started) * 1e6
            for frames, _, enqueued, trace in items:
                if trace is None:
                    continue
                tracer.emit(
                    trace, "batch.queue_wait", enqueued,
                    (flush_started - enqueued) * 1e6,
                    op=self.op, frames=len(frames),
                )
                tracer.emit(
                    trace, "batch.assemble", flush_started, assemble_us,
                    op=self.op, reason=reason, batch_frames=len(batch),
                    cohort=len(items),
                )
                tracer.emit(
                    trace, "batch.kernel", kernel_started, kernel_us,
                    op=self.op, reason=reason, batch_frames=len(batch),
                )
        offset = 0
        for frames, future, enqueued, _ in items:
            rows = slice(offset, offset + len(frames))
            offset += len(frames)
            if not future.done():
                future.set_result(_slice_result(result, rows))
            if self.telemetry is not None:
                self.telemetry.record_latency_us(
                    (completed - enqueued) * 1e6, self.op
                )


def _slice_result(result: object, rows: slice) -> object:
    """Row-slice a kernel result (plain array or BatchDecodeResult)."""
    if isinstance(result, BatchDecodeResult):
        return BatchDecodeResult(
            messages=result.messages[rows],
            codewords=result.codewords[rows],
            corrected_errors=result.corrected_errors[rows],
            detected_uncorrectable=result.detected_uncorrectable[rows],
        )
    return result[rows]


def _concat_results(parts: list) -> object:
    """Row-concatenate chunked kernel results (inverse of chunked submit)."""
    if len(parts) == 1:
        return parts[0]
    if isinstance(parts[0], BatchDecodeResult):
        return BatchDecodeResult(
            messages=np.concatenate([p.messages for p in parts]),
            codewords=np.concatenate([p.codewords for p in parts]),
            corrected_errors=np.concatenate([p.corrected_errors for p in parts]),
            detected_uncorrectable=np.concatenate(
                [p.detected_uncorrectable for p in parts]
            ),
        )
    return np.concatenate(parts, axis=0)


class MicroBatcher:
    """Route per-request frame blocks into coalesced kernel calls.

    One scheduler serves every session hosted by a server; lanes are
    created lazily per (session id, op) pair, so different codes and the
    encode/decode directions batch independently (they must — their
    frame widths differ).
    """

    def __init__(self, policy: Optional[BatchPolicy] = None):
        self.policy = policy if policy is not None else BatchPolicy()
        self._lanes: Dict[Tuple[int, str], _Lane] = {}

    #: Lane ops and the session kernel each dispatches to.
    _OP_KERNELS = {
        "encode": "encode_frames",
        "decode": "decode_frames",
        "decode_soft": "decode_soft_frames",
    }

    def _lane(self, session: CodecSession, op: str) -> _Lane:
        key = (session.session_id, op)
        lane = self._lanes.get(key)
        if lane is None:
            kernel = getattr(session, self._OP_KERNELS[op])
            lane = _Lane(
                kernel, self.policy, session.telemetry, op,
                asyncio.get_running_loop(),
            )
            self._lanes[key] = lane
        return lane

    async def submit(
        self, session: CodecSession, op: str, frames: np.ndarray
    ) -> object:
        """Queue ``frames`` on the (session, op) lane and await the result.

        Awaits lane capacity first (backpressure), then the flush that
        carries this request.  Returns the request's row-slice of the
        batch result: a ``(len(frames), n)`` array for encode, a
        :class:`~repro.coding.decoders.base.BatchDecodeResult` for
        decode and decode_soft (whose frames are float confidence rows
        rather than packed bits).
        """
        if op not in self._OP_KERNELS:
            raise ValueError(f"unknown op {op!r}")
        lane = self._lane(session, op)
        session.telemetry.record_request(op, len(frames))
        if len(frames) == 0:
            # Nothing to queue; complete immediately with an empty slice.
            width = session.k if op == "encode" else session.n
            dtype = np.float64 if op == "decode_soft" else np.uint8
            return _slice_result(
                lane.kernel(np.zeros((0, width), dtype)), slice(0, 0)
            )
        # A request larger than the lane's whole capacity could never be
        # admitted in one piece; feed it through in capacity-sized chunks
        # (each a normal batch) and reassemble row-for-row.
        arrival = time.perf_counter()
        trace = current_trace_id()
        step = self.policy.max_pending_frames
        if len(frames) <= step:
            await lane.wait_for_capacity(len(frames))
            return await lane.enqueue(frames, arrival, trace)
        parts = []
        for start in range(0, len(frames), step):
            chunk = frames[start:start + step]
            await lane.wait_for_capacity(len(chunk))
            parts.append(await lane.enqueue(chunk, arrival, trace))
        return _concat_results(parts)

    async def try_submit(
        self, session: CodecSession, op: str, frames: np.ndarray
    ) -> object:
        """Like :meth:`submit` but refuse instead of waiting for capacity.

        For requests larger than ``max_pending_frames`` the admission
        check covers the first chunk; later chunks may still wait (the
        lane is draining by then).
        """
        lane = self._lane(session, op)
        first = min(len(frames), self.policy.max_pending_frames)
        if first and not lane.has_capacity(first):
            raise BackpressureError(
                f"lane ({session.session_id}, {op}) is full: "
                f"{lane.pending_frames} frames pending"
            )
        return await self.submit(session, op, frames)

    def close_session(self, session_id: int) -> int:
        """Drop every lane of ``session_id``, flushing queued items first.

        The session-lifecycle counterpart of lane creation: without it a
        front end serving session churn grows ``_lanes`` without bound
        (each closed session leaves up to one dead lane per op, timer
        and all).  Flushing before removal answers every queued frame —
        close never strands a future — and cancels the lane's deadline
        timer, so no stale ``call_later`` callback can fire against a
        recycled (session, op) key.  Returns the number of lanes
        removed.
        """
        keys = [key for key in self._lanes if key[0] == session_id]
        for key in keys:
            self._lanes.pop(key).flush("close")
        return len(keys)

    def flush_all(self) -> None:
        """Flush every lane immediately (server drain/shutdown path).

        Iterates a snapshot of the lane map: a flush completes futures
        synchronously, and a completion callback may open a *new* lane
        (or close one) before the loop advances — mutating the dict
        mid-iteration would raise ``RuntimeError`` otherwise.
        """
        for lane in list(self._lanes.values()):
            lane.flush("drain")

    async def drain(self) -> None:
        """Flush repeatedly until no lane holds a queued frame.

        One :meth:`flush_all` is not enough when flushing wakes
        backpressured submitters, whose chunks land in lanes *after* the
        flush ran; the loop yields to the event loop between rounds so
        those submitters get to enqueue, then flushes again.  Used by a
        draining worker to guarantee every admitted frame is answered
        before it exits.
        """
        while self.pending_frames():
            self.flush_all()
            await asyncio.sleep(0)

    def pending_frames(self) -> int:
        return sum(lane.pending_frames for lane in self._lanes.values())
