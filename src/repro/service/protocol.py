"""Length-prefixed binary wire protocol of the streaming codec service.

Every frame on the wire is a 4-byte big-endian payload length followed
by the payload.  Requests open with a ``!BBI`` header (magic, opcode,
request id); responses echo the header plus a status byte.  Frame
payloads carry bit matrices packed 8 bits/byte row-wise
(:func:`pack_bits` / :func:`unpack_bits`), so a Hamming(8,4) codeword
costs one byte on the wire.

The request id is chosen by the client and echoed verbatim, which lets
clients pipeline many requests over one connection and match responses
out of order — the server's micro-batching scheduler completes them in
batch order, not arrival order.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.errors import ReproError

#: First payload byte of every well-formed frame.
MAGIC = 0xEC

#: Hard cap on a single frame's payload, requests beyond it are refused
#: before any allocation happens (1 MiB fits ~1M packed Hamming(8,4) words).
MAX_FRAME_BYTES = 1 << 20

# Opcodes -------------------------------------------------------------
OP_OPEN = 0x01    #: open a codec session (JSON config body)
OP_ENCODE = 0x02  #: encode k-bit messages -> n-bit (possibly corrupted) words
OP_DECODE = 0x03  #: decode n-bit received words -> k-bit messages + flags
OP_STATS = 0x04   #: JSON telemetry snapshot
OP_CODES = 0x05   #: JSON listing of registered codes/decoders
OP_DECODE_SOFT = 0x06  #: decode n float32 confidences/frame -> messages + flags
OP_ADMIN = 0x07   #: worker-pool admin plane (JSON action body)
OP_METRICS = 0x08  #: Prometheus text exposition of the metrics registry
OP_DECODE_STREAM = 0x09  #: push channel frames into a sliding-window decode
OP_CLOSE = 0x0A   #: close a codec session (JSON body naming session_id)
OP_MEM_WRITE = 0x0B  #: memory-lane line write (whole-line or RMW partial)
OP_MEM_READ = 0x0C   #: memory-lane line read (decode response layout)
OP_MEM_SCRUB = 0x0D  #: memory-lane scrub step (JSON ScrubReport + counters)

# Worker-plane opcodes (front end <-> decode worker pipes; never sent by
# clients).  They reuse the same framing so a worker pipe is just another
# protocol stream, but live in a disjoint range so a worker opcode leaking
# to the client plane is an immediate "unknown opcode" error.
OP_W_OPEN = 0x10   #: open a session under a *front-assigned* id (JSON body)
OP_W_STATS = 0x11  #: per-worker telemetry snapshot (JSON response)
OP_W_DRAIN = 0x12  #: finish in-flight work, flush, reply, then exit
OP_W_METRICS = 0x13  #: per-worker metrics-registry snapshot (JSON response)
OP_W_TRACED = 0x14   #: trace-id wrapper around a forwarded data-plane body

# Response status bytes ----------------------------------------------
ST_OK = 0x00
ST_ERROR = 0x01

_REQ_HEADER = struct.Struct("!BBI")     # magic, opcode, request_id
_RESP_HEADER = struct.Struct("!BBIB")   # magic, opcode, request_id, status
_BATCH_HEADER = struct.Struct("!HI")    # session_id, n_frames
# Stream push: session_id, n_frames (same prefix as _BATCH_HEADER, so the
# pooled front end's header peek routes both), first_index, flags.
_STREAM_HEADER = struct.Struct("!HIQB")
# Memory write: session_id, n_lines (the shared !HI routing prefix), flags.
_MEM_WRITE_HEADER = struct.Struct("!HIB")
_LEN_PREFIX = struct.Struct("!I")

#: Memory write flag: partial write — mask rows follow the message rows
#: and the store takes the read-modify-write path.
MEM_WRITE_FLAG_PARTIAL = 0x01

#: Stream push flag: this push ends the stream — drain every open window.
STREAM_FLAG_FINAL = 0x01

# Per-row status bytes of a stream response ------------------------------
STREAM_ROW_ON_TIME = 0   #: window closed normally; bit-identical to offline
STREAM_ROW_FORCED = 1    #: deadline expired; best-effort erasure decode
STREAM_ROW_FLUSHED = 2   #: drained by a final push or session close


class ProtocolError(ReproError):
    """Malformed frame, unknown opcode, or oversized payload."""


def pack_bits(bits: np.ndarray) -> bytes:
    """Pack a ``(batch, width)`` 0/1 array row-wise, 8 bits per byte."""
    arr = np.ascontiguousarray(bits, dtype=np.uint8)
    if arr.ndim != 2:
        raise ProtocolError(f"expected a (batch, width) bit array, got {arr.shape}")
    return np.packbits(arr, axis=1).tobytes()


def unpack_bits(data: bytes, n_frames: int, width: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: recover the ``(n_frames, width)`` rows."""
    row_bytes = (width + 7) // 8
    expected = n_frames * row_bytes
    if len(data) != expected:
        raise ProtocolError(
            f"expected {expected} packed bytes for {n_frames} x {width} bits, "
            f"got {len(data)}"
        )
    if n_frames == 0:
        return np.zeros((0, width), dtype=np.uint8)
    raw = np.frombuffer(data, dtype=np.uint8).reshape(n_frames, row_bytes)
    return np.unpackbits(raw, axis=1)[:, :width].copy()


# ---------------------------------------------------------------------
# Request/response payload builders and parsers
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class Request:
    """A parsed request frame."""

    opcode: int
    request_id: int
    body: bytes


@dataclass(frozen=True)
class Response:
    """A parsed response frame."""

    opcode: int
    request_id: int
    status: int
    body: bytes

    def raise_for_status(self) -> "Response":
        if self.status != ST_OK:
            raise ProtocolError(
                f"server error for request {self.request_id}: "
                f"{self.body.decode('utf-8', 'replace')}"
            )
        return self


def build_request(opcode: int, request_id: int, body: bytes = b"") -> bytes:
    return _REQ_HEADER.pack(MAGIC, opcode, request_id & 0xFFFFFFFF) + body


def build_response(
    opcode: int, request_id: int, status: int, body: bytes = b""
) -> bytes:
    return _RESP_HEADER.pack(MAGIC, opcode, request_id & 0xFFFFFFFF, status) + body


def parse_request(payload: bytes) -> Request:
    if len(payload) < _REQ_HEADER.size:
        raise ProtocolError(f"request frame too short ({len(payload)} bytes)")
    magic, opcode, request_id = _REQ_HEADER.unpack_from(payload)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic byte 0x{magic:02x}")
    return Request(opcode, request_id, payload[_REQ_HEADER.size:])


def parse_response(payload: bytes) -> Response:
    if len(payload) < _RESP_HEADER.size:
        raise ProtocolError(f"response frame too short ({len(payload)} bytes)")
    magic, opcode, request_id, status = _RESP_HEADER.unpack_from(payload)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic byte 0x{magic:02x}")
    return Response(opcode, request_id, status, payload[_RESP_HEADER.size:])


def build_batch_body(session_id: int, bits: np.ndarray) -> bytes:
    """ENCODE/DECODE request body: session id + frame count + packed rows."""
    return _BATCH_HEADER.pack(session_id & 0xFFFF, bits.shape[0]) + pack_bits(bits)


def parse_batch_body(body: bytes, width_of_session) -> Tuple[int, np.ndarray]:
    """Parse an ENCODE/DECODE body given ``width_of_session(session_id)``.

    ``width_of_session`` maps the session id to the per-frame bit width
    (k for encode requests, n for decode requests) so the packed rows
    can be sliced without carrying the width on the wire.
    """
    if len(body) < _BATCH_HEADER.size:
        raise ProtocolError(f"batch body too short ({len(body)} bytes)")
    session_id, n_frames = _BATCH_HEADER.unpack_from(body)
    width = width_of_session(session_id)
    bits = unpack_bits(body[_BATCH_HEADER.size:], n_frames, width)
    return session_id, bits


def peek_batch_header(body: bytes) -> Tuple[int, int]:
    """Session id and frame count of a data-plane batch body.

    Covers ENCODE/DECODE/DECODE_SOFT bodies, DECODE_STREAM pushes and
    the MEM_WRITE/MEM_READ/MEM_SCRUB memory-lane bodies — every
    data-plane header deliberately opens with the same ``!HI`` prefix.

    The pooled front end routes on the session id without unpacking the
    frame payload — the body is forwarded to the owning worker as the
    same preserialized bytes it arrived in, so routing must not cost a
    parse.
    """
    if len(body) < _BATCH_HEADER.size:
        raise ProtocolError(f"batch body too short ({len(body)} bytes)")
    session_id, n_frames = _BATCH_HEADER.unpack_from(body)
    return session_id, n_frames


def build_soft_batch_body(session_id: int, confidences: np.ndarray) -> bytes:
    """DECODE_SOFT request body: session id + frame count + float32 rows.

    Confidences travel as big-endian float32 (4 bytes/bit) — the soft
    frames' wire format.  The kernels upcast to float64 server-side, so
    a round trip through the wire quantises reliabilities to float32
    but never changes their signs.
    """
    values = np.ascontiguousarray(confidences, dtype=">f4")
    if values.ndim != 2:
        raise ProtocolError(
            f"expected a (batch, width) confidence array, got {values.shape}"
        )
    return _BATCH_HEADER.pack(session_id & 0xFFFF, values.shape[0]) + values.tobytes()


def parse_soft_batch_body(body: bytes, width_of_session) -> Tuple[int, np.ndarray]:
    """Parse a DECODE_SOFT body given ``width_of_session(session_id)``."""
    if len(body) < _BATCH_HEADER.size:
        raise ProtocolError(f"soft batch body too short ({len(body)} bytes)")
    session_id, n_frames = _BATCH_HEADER.unpack_from(body)
    width = width_of_session(session_id)
    data = body[_BATCH_HEADER.size:]
    expected = n_frames * width * 4
    if len(data) != expected:
        raise ProtocolError(
            f"expected {expected} confidence bytes for {n_frames} x {width} "
            f"float32 values, got {len(data)}"
        )
    if n_frames == 0:
        return session_id, np.zeros((0, width), dtype=np.float64)
    values = np.frombuffer(data, dtype=">f4").reshape(n_frames, width)
    if not np.isfinite(values).all():
        # NaN/Inf confidences would decode to a fabricated message with
        # no error flag (NaN never ties); refuse them at the boundary.
        raise ProtocolError("confidences must be finite (got NaN or Inf)")
    return session_id, values.astype(np.float64)


def build_stream_push_body(
    session_id: int,
    first_index: int,
    confidences: np.ndarray,
    final: bool = False,
) -> bytes:
    """DECODE_STREAM request body: header + big-endian float32 rows.

    ``first_index`` is the channel-frame index of the first row —
    explicit on the wire so the server can verify stream contiguity
    instead of trusting task-scheduling order under pipelining.  The
    ``final`` flag marks the stream's last push: the server drains every
    still-open window after absorbing it.
    """
    values = np.ascontiguousarray(confidences, dtype=">f4")
    if values.ndim != 2:
        raise ProtocolError(
            f"expected a (frames, width) confidence array, got {values.shape}"
        )
    flags = STREAM_FLAG_FINAL if final else 0
    header = _STREAM_HEADER.pack(
        session_id & 0xFFFF, values.shape[0], first_index, flags
    )
    return header + values.tobytes()


def parse_stream_push_body(body: bytes, width_of_session):
    """Parse a DECODE_STREAM body: (session_id, first_index, final, values)."""
    if len(body) < _STREAM_HEADER.size:
        raise ProtocolError(f"stream push body too short ({len(body)} bytes)")
    session_id, n_frames, first_index, flags = _STREAM_HEADER.unpack_from(body)
    width = width_of_session(session_id)
    data = body[_STREAM_HEADER.size:]
    expected = n_frames * width * 4
    if len(data) != expected:
        raise ProtocolError(
            f"expected {expected} confidence bytes for {n_frames} x {width} "
            f"float32 values, got {len(data)}"
        )
    if n_frames == 0:
        values = np.zeros((0, width), dtype=np.float64)
    else:
        values = np.frombuffer(data, dtype=">f4").reshape(n_frames, width)
        if not np.isfinite(values).all():
            raise ProtocolError("confidences must be finite (got NaN or Inf)")
        values = values.astype(np.float64)
    return session_id, first_index, bool(flags & STREAM_FLAG_FINAL), values


def build_stream_response_body(
    messages: np.ndarray,
    corrected: np.ndarray,
    detected: np.ndarray,
    status: np.ndarray,
) -> bytes:
    """DECODE_STREAM response: the decode layout plus a status byte per row.

    Row ``i`` decides the codeword *opened* by channel frame
    ``first_index + i`` of the request; its status byte records whether
    the window closed on time (``STREAM_ROW_ON_TIME``), was forced at
    the deadline (``STREAM_ROW_FORCED``), or was drained by a final
    push / session close (``STREAM_ROW_FLUSHED``).
    """
    n = messages.shape[0]
    corrected8 = np.minimum(corrected, 255).astype(np.uint8)
    return (
        struct.pack("!I", n)
        + pack_bits(messages)
        + corrected8.tobytes()
        + np.asarray(detected).astype(np.uint8).tobytes()
        + np.asarray(status).astype(np.uint8).tobytes()
    )


def parse_stream_response_body(body: bytes, k: int):
    """Inverse of :func:`build_stream_response_body`.

    Returns ``(messages, corrected, detected, status)`` with one row per
    pushed channel frame.
    """
    if len(body) < 4:
        raise ProtocolError("stream response body too short")
    (n_frames,) = struct.unpack_from("!I", body)
    row_bytes = (k + 7) // 8
    offset = 4
    packed = body[offset:offset + n_frames * row_bytes]
    offset += n_frames * row_bytes
    corrected = np.frombuffer(body[offset:offset + n_frames], dtype=np.uint8)
    offset += n_frames
    detected = np.frombuffer(body[offset:offset + n_frames], dtype=np.uint8)
    offset += n_frames
    status = np.frombuffer(body[offset:offset + n_frames], dtype=np.uint8)
    if len(status) != n_frames:
        raise ProtocolError("stream response body truncated")
    messages = unpack_bits(packed, n_frames, k)
    return (
        messages,
        corrected.astype(np.int64),
        detected.astype(bool),
        status.copy(),
    )


def build_mem_write_body(
    session_id: int,
    addresses: np.ndarray,
    messages: np.ndarray,
    masks: Optional[np.ndarray] = None,
) -> bytes:
    """MEM_WRITE request body: header, addresses, packed rows.

    Layout: ``!HIB`` (session id, line count, flags) + one big-endian
    uint32 line address per row + the packed k-bit message rows.  With
    ``masks`` given the partial flag is set, packed k-bit mask rows
    follow the messages, and the server takes the read-modify-write
    path.  The header opens with the shared ``!HI`` prefix so
    :func:`peek_batch_header` routes it like any other data-plane body.
    """
    addrs = np.ascontiguousarray(addresses, dtype=">u4").reshape(-1)
    if addrs.shape[0] != np.asarray(messages).shape[0]:
        raise ProtocolError(
            f"{addrs.shape[0]} addresses for {np.asarray(messages).shape[0]} "
            "message rows"
        )
    flags = 0 if masks is None else MEM_WRITE_FLAG_PARTIAL
    body = (
        _MEM_WRITE_HEADER.pack(session_id & 0xFFFF, addrs.shape[0], flags)
        + addrs.tobytes()
        + pack_bits(messages)
    )
    if masks is not None:
        if np.asarray(masks).shape != np.asarray(messages).shape:
            raise ProtocolError(
                f"mask shape {np.asarray(masks).shape} does not match "
                f"message shape {np.asarray(messages).shape}"
            )
        body += pack_bits(masks)
    return body


def parse_mem_write_body(body: bytes, width_of_session):
    """Parse a MEM_WRITE body: ``(session_id, addresses, messages, masks)``.

    ``masks`` is ``None`` for a whole-line write.  ``width_of_session``
    maps the session id to the message width k, as in
    :func:`parse_batch_body`.
    """
    if len(body) < _MEM_WRITE_HEADER.size:
        raise ProtocolError(f"memory write body too short ({len(body)} bytes)")
    session_id, n_lines, flags = _MEM_WRITE_HEADER.unpack_from(body)
    width = width_of_session(session_id)
    row_bytes = (width + 7) // 8
    partial = bool(flags & MEM_WRITE_FLAG_PARTIAL)
    offset = _MEM_WRITE_HEADER.size
    expected = n_lines * (4 + row_bytes * (2 if partial else 1))
    if len(body) - offset != expected:
        raise ProtocolError(
            f"expected {expected} memory-write payload bytes for {n_lines} "
            f"lines of {width} bits, got {len(body) - offset}"
        )
    addresses = np.frombuffer(body, dtype=">u4", count=n_lines, offset=offset)
    offset += 4 * n_lines
    messages = unpack_bits(body[offset:offset + n_lines * row_bytes], n_lines, width)
    offset += n_lines * row_bytes
    masks = (
        unpack_bits(body[offset:offset + n_lines * row_bytes], n_lines, width)
        if partial
        else None
    )
    return session_id, addresses.astype(np.int64), messages, masks


def build_mem_write_response_body(
    corrected: np.ndarray, detected: np.ndarray
) -> bytes:
    """MEM_WRITE response: line count + per-line RMW read-phase flags.

    Whole-line writes report all-zero rows (no decode happened); partial
    writes report the read-phase correction counts and detected flags so
    a client can see when its merge was built on a poisoned line.
    """
    corrected8 = np.minimum(np.asarray(corrected), 255).astype(np.uint8)
    return (
        struct.pack("!I", corrected8.shape[0])
        + corrected8.tobytes()
        + np.asarray(detected).astype(np.uint8).tobytes()
    )


def parse_mem_write_response_body(body: bytes) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`build_mem_write_response_body`."""
    if len(body) < 4:
        raise ProtocolError("memory write response body too short")
    (n_lines,) = struct.unpack_from("!I", body)
    if len(body) != 4 + 2 * n_lines:
        raise ProtocolError("memory write response body truncated")
    corrected = np.frombuffer(body, dtype=np.uint8, count=n_lines, offset=4)
    detected = np.frombuffer(body, dtype=np.uint8, count=n_lines, offset=4 + n_lines)
    return corrected.astype(np.int64), detected.astype(bool)


def build_mem_read_body(session_id: int, addresses: np.ndarray) -> bytes:
    """MEM_READ request body: the ``!HI`` prefix + uint32 line addresses."""
    addrs = np.ascontiguousarray(addresses, dtype=">u4").reshape(-1)
    return _BATCH_HEADER.pack(session_id & 0xFFFF, addrs.shape[0]) + addrs.tobytes()


def parse_mem_read_body(body: bytes) -> Tuple[int, np.ndarray]:
    """Parse a MEM_READ body into ``(session_id, addresses)``."""
    if len(body) < _BATCH_HEADER.size:
        raise ProtocolError(f"memory read body too short ({len(body)} bytes)")
    session_id, n_lines = _BATCH_HEADER.unpack_from(body)
    data = body[_BATCH_HEADER.size:]
    if len(data) != 4 * n_lines:
        raise ProtocolError(
            f"expected {4 * n_lines} address bytes, got {len(data)}"
        )
    addresses = np.frombuffer(data, dtype=">u4")
    return session_id, addresses.astype(np.int64)


def build_mem_scrub_body(session_id: int, count: int) -> bytes:
    """MEM_SCRUB request body: the ``!HI`` prefix; ``count`` lines to sweep.

    The response is a JSON body carrying the step's
    :meth:`~repro.memory.scrub.ScrubReport.to_dict` under ``"report"``,
    the injected-rot bit count under ``"rot_bits"``, and the session's
    cumulative counter snapshot under ``"counters"``.
    """
    return _BATCH_HEADER.pack(session_id & 0xFFFF, int(count))


def parse_mem_scrub_body(body: bytes) -> Tuple[int, int]:
    """Parse a MEM_SCRUB body into ``(session_id, count)``."""
    if len(body) != _BATCH_HEADER.size:
        raise ProtocolError(f"memory scrub body must be {_BATCH_HEADER.size} bytes")
    session_id, count = _BATCH_HEADER.unpack_from(body)
    return session_id, count


def build_decode_response_body(
    messages: np.ndarray, corrected: np.ndarray, detected: np.ndarray
) -> bytes:
    """DECODE response: frame count, packed messages, per-frame flag bytes."""
    n = messages.shape[0]
    corrected8 = np.minimum(corrected, 255).astype(np.uint8)
    return (
        struct.pack("!I", n)
        + pack_bits(messages)
        + corrected8.tobytes()
        + detected.astype(np.uint8).tobytes()
    )


def parse_decode_response_body(
    body: bytes, k: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    if len(body) < 4:
        raise ProtocolError("decode response body too short")
    (n_frames,) = struct.unpack_from("!I", body)
    row_bytes = (k + 7) // 8
    offset = 4
    packed = body[offset:offset + n_frames * row_bytes]
    offset += n_frames * row_bytes
    corrected = np.frombuffer(body[offset:offset + n_frames], dtype=np.uint8)
    offset += n_frames
    detected = np.frombuffer(body[offset:offset + n_frames], dtype=np.uint8)
    if len(detected) != n_frames:
        raise ProtocolError("decode response body truncated")
    messages = unpack_bits(packed, n_frames, k)
    return messages, corrected.astype(np.int64), detected.astype(bool)


def build_encode_response_body(codewords: np.ndarray) -> bytes:
    """ENCODE response: frame count + packed (possibly corrupted) words."""
    return struct.pack("!I", codewords.shape[0]) + pack_bits(codewords)


def parse_encode_response_body(body: bytes, n: int) -> np.ndarray:
    if len(body) < 4:
        raise ProtocolError("encode response body too short")
    (n_frames,) = struct.unpack_from("!I", body)
    return unpack_bits(body[4:], n_frames, n)


def build_traced_body(trace_id: str, opcode: int, body: bytes) -> bytes:
    """OP_W_TRACED body: [id length][trace id][inner opcode][inner body].

    Sampled requests reach their pool worker in this wrapper so the
    trace id survives the pipe; *unsampled* requests are forwarded as
    the untouched original bytes — the tracing-off hot path stays
    byte-identical to the pre-tracing protocol.
    """
    encoded = trace_id.encode("ascii")
    if not 0 < len(encoded) < 256:
        raise ProtocolError(f"trace id {trace_id!r} does not fit one length byte")
    return bytes((len(encoded),)) + encoded + bytes((opcode,)) + body


def parse_traced_body(body: bytes) -> Tuple[str, int, bytes]:
    """Inverse of :func:`build_traced_body`: (trace_id, opcode, body)."""
    if len(body) < 3:
        raise ProtocolError(f"traced body too short ({len(body)} bytes)")
    id_len = body[0]
    if len(body) < 2 + id_len:
        raise ProtocolError("traced body truncated inside the trace id")
    trace_id = body[1 : 1 + id_len].decode("ascii", "replace")
    opcode = body[1 + id_len]
    return trace_id, opcode, body[2 + id_len :]


def build_json_body(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def parse_json_body(body: bytes) -> Dict[str, Any]:
    try:
        parsed = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON body: {exc}") from exc
    if not isinstance(parsed, dict):
        raise ProtocolError("JSON body must be an object")
    return parsed


# ---------------------------------------------------------------------
# Stream helpers
# ---------------------------------------------------------------------
async def read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one length-prefixed frame; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(_LEN_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ProtocolError("connection closed mid-frame") from exc
        return None
    (length,) = _LEN_PREFIX.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc


def frame_bytes(payload: bytes) -> bytes:
    """Prefix ``payload`` with its length, ready for ``writer.write``."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return _LEN_PREFIX.pack(len(payload)) + payload
