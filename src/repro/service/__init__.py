"""Streaming codec service: online encode/decode over the batch kernels.

The paper's encoders sit *inline* on a live cryo-to-room-temperature
link; this subsystem is that workload in software.  An asyncio
:class:`~repro.service.server.CodecServer` hosts many codec sessions
(code x decoder x error-injection policy), coalesces concurrent
requests through the :class:`~repro.service.batcher.MicroBatcher` into
the PR 1 bit-packed batch kernels, and exposes per-session telemetry.
:mod:`repro.service.loadgen` drives it with shaped traffic; the
``repro serve`` / ``repro loadgen`` CLI subcommands wrap both.

``serve --workers N`` scales the same service across a shared-nothing
pool of N decode worker processes (:mod:`repro.service.workers`):
consistent-hash session routing, pickle-free frame handoff, per-worker
telemetry rollup, and graceful drain/restart with crash supervision.
"""

from repro.service.batcher import BatchPolicy, MicroBatcher
from repro.service.client import (
    CodecClient,
    DecodedBlock,
    MemoryWriteBlock,
    SessionHandle,
    StreamBlock,
)
from repro.service.memory import MemoryLane
from repro.service.loadgen import (
    LoadReport,
    SCENARIO_FACTORIES,
    Scenario,
    make_scenario,
    run_scenario,
)
from repro.service.protocol import ProtocolError
from repro.service.server import CodecServer
from repro.service.session import (
    CodecSession,
    SessionConfig,
    SessionRegistry,
    catalog,
)
from repro.service.stream import StreamLane
from repro.service.telemetry import (
    LatencyReservoir,
    MergedLatencyView,
    ServiceTelemetry,
    SessionTelemetry,
    rollup_worker_snapshots,
)
from repro.service.workers import (
    DispatchCore,
    HashRing,
    WorkerDied,
    WorkerFaults,
    WorkerPool,
)

__all__ = [
    "BatchPolicy",
    "MicroBatcher",
    "CodecClient",
    "DecodedBlock",
    "MemoryWriteBlock",
    "SessionHandle",
    "StreamBlock",
    "StreamLane",
    "MemoryLane",
    "LoadReport",
    "Scenario",
    "SCENARIO_FACTORIES",
    "make_scenario",
    "run_scenario",
    "ProtocolError",
    "CodecServer",
    "CodecSession",
    "SessionConfig",
    "SessionRegistry",
    "catalog",
    "LatencyReservoir",
    "MergedLatencyView",
    "ServiceTelemetry",
    "SessionTelemetry",
    "rollup_worker_snapshots",
    "DispatchCore",
    "HashRing",
    "WorkerDied",
    "WorkerFaults",
    "WorkerPool",
]
