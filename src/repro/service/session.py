"""Codec sessions: (code x decoder x channel policy) served by one server.

A :class:`CodecSession` binds a registered code, a decoder strategy and
an optional error-injection channel into the unit the micro-batching
scheduler dispatches to.  The :class:`SessionRegistry` hands out small
integer ids so the wire protocol can reference sessions in two bytes,
and is built directly on :mod:`repro.coding.registry` — any code/decoder
the experiments can name, the service can serve.

Error injection exists for fault-drill scenarios: with ``p01``/``p10``
set, every *encode* response is corrupted by a
:class:`~repro.link.channel.BinaryChannel` drawn from the session's own
seeded stream, so a load generator can rehearse the full
encode -> corrupt -> decode loop against a live server.  Injection draws
depend on frame *arrival order* at the scheduler, so under concurrency
they are reproducible only in aggregate, not frame-for-frame.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.coding.decoders import Decoder, default_decoder_for
from repro.coding.linear import LinearBlockCode
from repro.coding.registry import (
    available_codes,
    available_decoders,
    get_code,
    get_decoder,
)
from repro.errors import CodingError, SessionError
from repro.link.channel import BinaryChannel
from repro.service.telemetry import SessionTelemetry
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class SessionConfig:
    """Everything needed to (re)build one codec session.

    Attributes
    ----------
    code : str
        Short code name accepted by :func:`repro.coding.registry.get_code`.
    decoder : str, optional
        Decoder strategy name; ``None`` picks the paper's pairing.
    p01, p10 : float
        Error-injection flip probabilities applied to *encode* responses
        (0/0 disables injection entirely — no RNG is consumed).
    seed : int, optional
        Seed of the session's injection stream; ``None`` draws fresh
        entropy per session.
    stream_depth : int, optional
        Enables the streaming decode lane (``OP_DECODE_STREAM``): the
        cross-frame interleaving depth of the session's
        :class:`~repro.coding.stream.SlidingWindowDecoder`.  ``None``
        (the default) leaves the session batch-only.
    stream_shift : int
        Extra frame delay per bit class of the stream layout; only
        meaningful with ``stream_depth``.
    stream_deadline_us : float, optional
        Per-session latency deadline of the streaming lane: open
        codewords older than this are forced to best-effort decisions
        and counted as deadline misses.  ``None`` defers to the
        server-wide default (which may itself be unbounded).
    memory_lines : int, optional
        Enables the memory lane (``OP_MEM_*``): the session becomes a
        :class:`~repro.memory.frontend.MemoryEccFrontend` of this many
        ECC-protected lines plus a :class:`~repro.memory.scrub.Scrubber`.
        ``None`` (the default) leaves the session memory-less.
    memory_rot : float
        Retention-rot rate: before each scrub step, every bit of the
        swept window flips independently with this probability, drawn
        from the session's seeded stream.  Only meaningful with
        ``memory_lines``; ``0.0`` injects nothing and consumes no draws.
    """

    code: str
    decoder: Optional[str] = None
    p01: float = 0.0
    p10: float = 0.0
    seed: Optional[int] = None
    stream_depth: Optional[int] = None
    stream_shift: int = 1
    stream_deadline_us: Optional[float] = None
    memory_lines: Optional[int] = None
    memory_rot: float = 0.0

    def label(self) -> str:
        parts = [self.code, self.decoder or "default"]
        if self.p01 or self.p10:
            parts.append(f"p01={self.p01:g},p10={self.p10:g}")
        if self.stream_depth is not None:
            parts.append(f"stream={self.stream_depth}x{self.stream_shift}")
        if self.memory_lines is not None:
            parts.append(f"mem={self.memory_lines}@{self.memory_rot:g}")
        return ":".join(parts)

    def to_dict(self) -> Dict:
        # Stream fields appear only when streaming is enabled, keeping
        # every pre-existing config's dict — and therefore its
        # consistent-hash routing key — byte-identical.
        payload = {
            "code": self.code,
            "decoder": self.decoder,
            "p01": self.p01,
            "p10": self.p10,
            "seed": self.seed,
        }
        if self.stream_depth is not None:
            payload["stream_depth"] = self.stream_depth
            payload["stream_shift"] = self.stream_shift
            payload["stream_deadline_us"] = self.stream_deadline_us
        if self.memory_lines is not None:
            payload["memory_lines"] = self.memory_lines
            payload["memory_rot"] = self.memory_rot
        return payload

    def routing_key(self) -> str:
        """Canonical string identity used for consistent-hash routing.

        Built from the full config dict (seed included), so two sessions
        that differ only in their injection stream still spread across
        the worker pool instead of piling onto one worker.  ``json`` with
        sorted keys keeps the key stable across processes and runs —
        unlike ``hash()``, which is salted per interpreter.
        """
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict) -> "SessionConfig":
        try:
            code = payload["code"]
        except KeyError:
            raise SessionError("session config must name a 'code'")
        stream_depth = payload.get("stream_depth")
        stream_deadline = payload.get("stream_deadline_us")
        memory_lines = payload.get("memory_lines")
        return cls(
            code=str(code),
            decoder=payload.get("decoder") or None,
            p01=float(payload.get("p01", 0.0)),
            p10=float(payload.get("p10", 0.0)),
            seed=None if payload.get("seed") is None else int(payload["seed"]),
            stream_depth=None if stream_depth is None else int(stream_depth),
            stream_shift=int(payload.get("stream_shift", 1)),
            stream_deadline_us=(
                None if stream_deadline is None else float(stream_deadline)
            ),
            memory_lines=None if memory_lines is None else int(memory_lines),
            memory_rot=float(payload.get("memory_rot", 0.0)),
        )


class CodecSession:
    """One served (code, decoder, channel-policy) binding."""

    def __init__(
        self,
        session_id: int,
        config: SessionConfig,
        telemetry: Optional[SessionTelemetry] = None,
    ):
        # Composite code names make bad configs richer than unknown
        # names: a mis-parameterised composite raises ValueError /
        # DimensionError (via CodingError) and a strategy applied to an
        # incompatible code raises TypeError.  All of them are client
        # configuration mistakes, so all map to SessionError rather
        # than escaping as internal server errors.
        _config_errors = (KeyError, TypeError, ValueError, CodingError)
        try:
            self.code: LinearBlockCode = get_code(config.code)
        except _config_errors as exc:
            raise SessionError(str(exc)) from exc
        # Composite codes can be deep (k·depth up to hundreds of bits);
        # the tabulating strategies (coset tables are 2^(n-k) rows,
        # codebooks 2^k) would let one session config OOM the server.
        # Composites are served through their streaming wrapper
        # decoders only.
        from repro.coding.interleave import ConcatenatedCode, InterleavedCode

        if isinstance(self.code, (InterleavedCode, ConcatenatedCode)):
            if config.decoder not in (None, "interleaved", "concatenated"):
                raise SessionError(
                    f"composite code {config.code!r} must use its composite "
                    f"decoder (got strategy {config.decoder!r}); configure the "
                    "constituent decoders library-side instead"
                )
        try:
            self.decoder: Decoder = (
                get_decoder(self.code, config.decoder)
                if config.decoder is not None
                else default_decoder_for(self.code)
            )
        except _config_errors as exc:
            raise SessionError(str(exc)) from exc
        if config.stream_depth is not None and config.stream_depth < 1:
            raise SessionError(
                f"stream_depth must be >= 1, got {config.stream_depth}"
            )
        if config.stream_shift < 0:
            raise SessionError(
                f"stream_shift must be non-negative, got {config.stream_shift}"
            )
        if config.stream_deadline_us is not None and config.stream_deadline_us <= 0:
            raise SessionError(
                f"stream_deadline_us must be positive, got "
                f"{config.stream_deadline_us}"
            )
        if config.memory_lines is not None:
            from repro.memory.frontend import MAX_MEMORY_LINES

            if not 1 <= config.memory_lines <= MAX_MEMORY_LINES:
                raise SessionError(
                    f"memory_lines must lie in [1, {MAX_MEMORY_LINES}], "
                    f"got {config.memory_lines}"
                )
            if not 0.0 <= config.memory_rot <= 1.0:
                raise SessionError(
                    f"memory_rot must lie in [0, 1], got {config.memory_rot}"
                )
        elif config.memory_rot:
            raise SessionError("memory_rot requires memory_lines")
        self.session_id = session_id
        self.config = config
        self.channel: Optional[BinaryChannel] = None
        self._rng: Optional[np.random.Generator] = None
        if config.p01 or config.p10:
            self.channel = BinaryChannel(p01=config.p01, p10=config.p10)
            self._rng = as_generator(config.seed)
        self.telemetry = telemetry if telemetry is not None else SessionTelemetry()

    @property
    def n(self) -> int:
        return self.code.n

    @property
    def k(self) -> int:
        return self.code.k

    def describe(self) -> Dict:
        payload = {
            "session_id": self.session_id,
            "code": self.code.name,
            "n": self.n,
            "k": self.k,
            "d_min": self.code.minimum_distance,
            "decoder": self.decoder.strategy_name,
            "p01": self.config.p01,
            "p10": self.config.p10,
        }
        if self.config.stream_depth is not None:
            from repro.coding.stream import stream_span

            payload["stream_depth"] = self.config.stream_depth
            payload["stream_shift"] = self.config.stream_shift
            payload["stream_span"] = stream_span(
                self.config.stream_depth, self.config.stream_shift
            )
            payload["stream_deadline_us"] = self.config.stream_deadline_us
        if self.config.memory_lines is not None:
            payload["memory_lines"] = self.config.memory_lines
            payload["memory_rot"] = self.config.memory_rot
        return payload

    # -- kernels the scheduler dispatches to ---------------------------
    def encode_frames(self, messages: np.ndarray) -> np.ndarray:
        """Encode a ``(batch, k)`` block; inject channel errors if configured."""
        codewords = self.code.encode_batch(messages)
        if self.channel is not None:
            codewords = self.channel.transmit(codewords, random_state=self._rng)
        return codewords

    def decode_frames(self, received: np.ndarray):
        """Decode a ``(batch, n)`` block; returns a ``BatchDecodeResult``."""
        result = self.decoder.decode_batch_detailed(received)
        self.telemetry.record_decode_outcome(
            result.corrected_errors, result.detected_uncorrectable
        )
        return result

    def decode_soft_frames(self, confidences: np.ndarray):
        """Soft-decode a ``(batch, n)`` float confidence block.

        Runs the decoder's vectorised soft kernel
        (:meth:`~repro.coding.decoders.base.Decoder.decode_soft_batch_detailed`)
        and records the outcome under the telemetry's soft counters, so
        the stats endpoint can report how many frames the soft path
        repaired.
        """
        result = self.decoder.decode_soft_batch_detailed(confidences)
        self.telemetry.record_decode_outcome(
            result.corrected_errors, result.detected_uncorrectable, soft=True
        )
        return result


class SessionRegistry:
    """Id-indexed store of live sessions, deduplicating identical configs."""

    def __init__(self, max_sessions: int = 1024):
        self._sessions: Dict[int, CodecSession] = {}
        self._by_config: Dict[SessionConfig, int] = {}
        self._next_id = 1
        self._max_sessions = max_sessions

    def open(
        self, config: SessionConfig, session_id: Optional[int] = None
    ) -> CodecSession:
        """Open (or return the existing) session for ``config``.

        Identical config tuples share one session — and, for noisy
        configs, one injection stream — so repeated opens from a fleet
        of clients (or a long-lived server's worth of loadgen runs)
        cannot grow the registry without bound.  Clients that need
        *independent* injection streams must pass distinct seeds; an
        unseeded noisy config draws fresh entropy once, at first open.

        ``session_id`` forces the id instead of allocating the next one.
        The pooled front end owns the id space and uses this to rebuild
        sessions in a respawned worker under their original wire ids.
        """
        if config in self._by_config:
            existing = self._sessions[self._by_config[config]]
            if session_id is not None and existing.session_id != session_id:
                raise SessionError(
                    f"config already open as session {existing.session_id}, "
                    f"cannot reopen as {session_id}"
                )
            return existing
        if session_id is not None and session_id in self._sessions:
            raise SessionError(
                f"session id {session_id} is already bound to a different config"
            )
        if len(self._sessions) >= self._max_sessions:
            raise SessionError(
                f"session limit reached ({self._max_sessions}); close the server"
            )
        if session_id is None:
            session_id = self._next_id
            self._next_id += 1
        else:
            self._next_id = max(self._next_id, session_id + 1)
        session = CodecSession(session_id, config)
        self._sessions[session_id] = session
        self._by_config[config] = session_id
        return session

    def get(self, session_id: int) -> CodecSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"unknown session id {session_id}")

    def close(self, session_id: int) -> CodecSession:
        """Remove a session from the registry, freeing its id and config.

        The config mapping is dropped too, so a later open of the same
        config builds a *fresh* session (new injection stream, new
        stream state) under a new id.  Unknown ids raise
        :class:`~repro.errors.SessionError`.
        """
        session = self.get(session_id)
        del self._sessions[session_id]
        self._by_config.pop(session.config, None)
        return session

    def __len__(self) -> int:
        return len(self._sessions)

    def describe_all(self) -> List[Dict]:
        return [s.describe() for _, s in sorted(self._sessions.items())]

    def labels(self) -> Dict[int, str]:
        return {sid: s.config.label() for sid, s in self._sessions.items()}


def catalog() -> Dict:
    """The discovery payload behind ``repro codes`` and ``OP_CODES``.

    Lists every registered code with its parameters and the paper's
    default decoder pairing, plus the decoder strategies a session
    config may name.
    """
    codes = []
    for name in available_codes():
        code = get_code(name)
        codes.append(
            {
                "name": name,
                "display_name": code.name,
                "n": code.n,
                "k": code.k,
                "rate": round(code.rate, 4),
                "d_min": code.minimum_distance,
                "default_decoder": default_decoder_for(code).strategy_name,
            }
        )
    return {"codes": codes, "decoders": available_decoders()}
