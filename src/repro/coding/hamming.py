"""Hamming and extended Hamming codes.

The paper uses the specific generator matrices of Section III (its
Eq. (1) and Eq. (3)), which embed the 4 message bits verbatim at codeword
positions c3, c5, c6, c7 (1-indexed).  :func:`hamming74_paper` and
:func:`hamming84_paper` reproduce those exact matrices; the generic
:func:`hamming_code` builds the whole (2^r - 1, 2^r - 1 - r) family for
ablations.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.coding.linear import LinearBlockCode
from repro.gf2.matrix import GF2Matrix

#: Paper Eq. (1): generator of the extended Hamming(8,4) code.  Row i is
#: the codeword emitted for message bit m_{i+1}; columns are c1..c8.
PAPER_G_HAMMING84 = [
    [1, 1, 1, 0, 0, 0, 0, 1],
    [1, 0, 0, 1, 1, 0, 0, 1],
    [0, 1, 0, 1, 0, 1, 0, 1],
    [1, 1, 0, 1, 0, 0, 1, 0],
]

#: Hamming(7,4) = Hamming(8,4) without the overall parity bit c8
#: (paper, Section III: "similar ... without the output bit c8").
PAPER_G_HAMMING74 = [row[:7] for row in PAPER_G_HAMMING84]

#: Codeword positions (0-indexed) where m1..m4 appear verbatim:
#: c3, c5, c6, c7 in the paper's 1-indexed naming.
PAPER_MESSAGE_POSITIONS = [2, 4, 5, 6]


def hamming74_paper() -> LinearBlockCode:
    """The paper's Hamming(7,4) code (Eq. (3) without c8).

    Boolean form (paper Eq. (3)):

    * c1 = m1 ^ m2 ^ m4
    * c2 = m1 ^ m3 ^ m4
    * c3 = m1
    * c4 = m2 ^ m3 ^ m4
    * c5 = m2, c6 = m3, c7 = m4
    """
    return LinearBlockCode(
        GF2Matrix(PAPER_G_HAMMING74),
        name="Hamming(7,4)",
        message_positions=PAPER_MESSAGE_POSITIONS,
    )


def hamming84_paper() -> LinearBlockCode:
    """The paper's extended Hamming(8,4) code (Eq. (1)).

    Adds the overall parity bit c8 = m1 ^ m2 ^ m3, raising dmin from 3
    to 4 (single-error correction + double-error detection).
    """
    return LinearBlockCode(
        GF2Matrix(PAPER_G_HAMMING84),
        name="Hamming(8,4)",
        message_positions=PAPER_MESSAGE_POSITIONS,
    )


def hamming_parity_check(r: int) -> GF2Matrix:
    """Parity-check matrix of the (2^r - 1, 2^r - 1 - r) Hamming code.

    Column j (1-indexed) is the binary expansion of j, so the syndrome of
    a single-bit error *is* the 1-indexed error position — Hamming's
    original construction.
    """
    if r < 2:
        raise ValueError("Hamming codes need r >= 2 parity bits")
    n = (1 << r) - 1
    cols = [[(j >> b) & 1 for b in range(r - 1, -1, -1)] for j in range(1, n + 1)]
    return GF2Matrix(np.array(cols, dtype=np.uint8).T)


def hamming_code(r: int) -> LinearBlockCode:
    """The generic (2^r - 1, 2^r - 1 - r) Hamming code, systematic layout.

    Message bits occupy the non-power-of-two positions, parity bits the
    power-of-two positions, as in Hamming's 1950 construction.
    """
    h = hamming_parity_check(r)
    n = h.cols
    k = n - r
    parity_positions = [(1 << i) - 1 for i in range(r)]  # 0-indexed powers of two
    message_positions = [j for j in range(n) if j not in parity_positions]
    harr = h.to_array()
    g = np.zeros((k, n), dtype=np.uint8)
    for i, pos in enumerate(message_positions):
        g[i, pos] = 1
        # Parity bit p (at position 2^p - 1) covers positions whose
        # 1-indexed binary expansion has bit p set.
        for p, ppos in enumerate(parity_positions):
            if harr[r - 1 - p, pos]:
                g[i, ppos] = 1
    return LinearBlockCode(
        GF2Matrix(g),
        name=f"Hamming({n},{k})",
        message_positions=message_positions,
        parity_check=h,
    )


def extend_with_overall_parity(code: LinearBlockCode) -> LinearBlockCode:
    """Append an overall parity bit to any code (dmin 3 -> 4 for Hamming)."""
    g = code.generator.to_array()
    parity = (g.sum(axis=1) % 2).astype(np.uint8).reshape(-1, 1)
    extended = np.concatenate([g, parity], axis=1)
    positions = code.message_positions
    return LinearBlockCode(
        GF2Matrix(extended),
        name=f"extended({code.name})",
        message_positions=positions,
    )


def paper_codeword_equations() -> List[str]:
    """The paper's Eq. (3) as readable strings (used in docs and tests)."""
    return [
        "c1 = m1 ^ m2 ^ m4",
        "c2 = m1 ^ m3 ^ m4",
        "c3 = m1",
        "c4 = m2 ^ m3 ^ m4",
        "c5 = m2",
        "c6 = m3",
        "c7 = m4",
        "c8 = m1 ^ m2 ^ m3",
    ]
