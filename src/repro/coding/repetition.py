"""Repetition codes — the simplest baseline in the design space sweeps."""

from __future__ import annotations

import numpy as np

from repro.coding.linear import LinearBlockCode
from repro.gf2.matrix import GF2Matrix


def repetition_code(n: int) -> LinearBlockCode:
    """The [n, 1, n] repetition code."""
    if n < 1:
        raise ValueError("repetition length must be >= 1")
    return LinearBlockCode(
        GF2Matrix(np.ones((1, n), dtype=np.uint8)),
        name=f"Repetition({n},1)",
        message_positions=[0],
    )


def bitwise_repetition_code(k: int, copies: int) -> LinearBlockCode:
    """Each of k message bits repeated ``copies`` times (k*copies length).

    A strawman alternative to the paper's encoders: for k=4, copies=2 it
    fills the same 8 output channels but only *detects* single errors.
    """
    if k < 1 or copies < 1:
        raise ValueError("k and copies must be >= 1")
    g = np.zeros((k, k * copies), dtype=np.uint8)
    for i in range(k):
        g[i, i * copies : (i + 1) * copies] = 1
    return LinearBlockCode(
        GF2Matrix(g),
        name=f"BitRepetition({k * copies},{k})",
        message_positions=[i * copies for i in range(k)],
    )
