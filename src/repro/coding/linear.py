"""Generic linear block codes over GF(2).

:class:`LinearBlockCode` carries the generator matrix and derives
everything the paper's analysis needs: the parity-check matrix, exact
minimum distance and weight enumerator (codes here are short, so
exhaustive enumeration is the honest choice), syndrome/coset structure,
and the message <-> codeword maps used by the encoders and decoders.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DimensionError, SingularMatrixError
from repro.gf2.bitpack import PackedGF2Matmul
from repro.gf2.matrix import GF2Matrix
from repro.gf2.vectors import (
    all_binary_vectors,
    as_bit_array,
    format_bits,
    hamming_weight,
)


class LinearBlockCode:
    """A binary linear [n, k] block code defined by its generator matrix.

    Parameters
    ----------
    generator:
        A full-row-rank ``k x n`` GF(2) matrix (rows are basis codewords).
    name:
        Human-readable name used in reports (e.g. ``"Hamming(8,4)"``).
    message_positions:
        Optional codeword positions from which the message can be read
        back directly (for codes, like the paper's Hamming encoders, that
        embed the message bits verbatim at known positions).  Used by the
        detect-and-fallback decoding policy.
    """

    def __init__(
        self,
        generator: GF2Matrix,
        name: Optional[str] = None,
        message_positions: Optional[Sequence[int]] = None,
        parity_check: Optional[GF2Matrix] = None,
    ):
        generator = GF2Matrix(generator)
        if generator.rank() != generator.rows:
            raise SingularMatrixError(
                "generator matrix must have full row rank "
                f"(rank {generator.rank()} < k={generator.rows})"
            )
        self._generator = generator
        if parity_check is not None:
            parity_check = GF2Matrix(parity_check)
            if parity_check.shape != (generator.cols - generator.rows, generator.cols):
                raise DimensionError(
                    "parity_check must be (n-k) x n for this generator"
                )
            if (generator @ parity_check.T).to_array().any():
                raise SingularMatrixError("G H^T != 0: not a parity check of G")
        self._explicit_parity_check = parity_check
        self.name = name or f"Linear({generator.cols},{generator.rows})"
        if message_positions is not None:
            message_positions = list(message_positions)
            if len(message_positions) != self.k:
                raise DimensionError(
                    f"message_positions must list {self.k} codeword positions"
                )
            if any(not 0 <= p < self.n for p in message_positions):
                raise DimensionError("message_positions out of codeword range")
            self._validate_message_positions(message_positions)
        self._message_positions = message_positions

    def _validate_message_positions(self, positions: List[int]) -> None:
        sub = self._generator.to_array()[:, positions]
        if GF2Matrix(sub).rank() != self.k:
            raise SingularMatrixError(
                "message_positions do not carry the message verbatim"
            )
        if not (GF2Matrix(sub) == GF2Matrix.identity(self.k)):
            raise SingularMatrixError(
                "message_positions must select an identity submatrix of G"
            )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def generator(self) -> GF2Matrix:
        """The ``k x n`` generator matrix G."""
        return self._generator

    @property
    def n(self) -> int:
        """Codeword length."""
        return self._generator.cols

    @property
    def k(self) -> int:
        """Message length (code dimension)."""
        return self._generator.rows

    @property
    def rate(self) -> float:
        """Code rate k/n."""
        return self.k / self.n

    @property
    def redundancy(self) -> int:
        """Number of parity bits n - k."""
        return self.n - self.k

    @property
    def message_positions(self) -> Optional[List[int]]:
        """Codeword positions carrying message bits verbatim, if known."""
        return None if self._message_positions is None else list(self._message_positions)

    # ------------------------------------------------------------------
    # Derived matrices
    # ------------------------------------------------------------------
    @cached_property
    def parity_check(self) -> GF2Matrix:
        """An ``(n-k) x n`` parity-check matrix H with ``G H^T = 0``.

        Uses the explicitly supplied H when the construction has a
        canonical one (Hamming's position-indexed columns), otherwise a
        null-space basis of G.
        """
        if self._explicit_parity_check is not None:
            return self._explicit_parity_check
        h = self._generator.null_space()
        if h.rows != self.redundancy:
            raise SingularMatrixError("null space has unexpected dimension")
        return h

    @cached_property
    def systematic_generator(self) -> Tuple[GF2Matrix, List[int]]:
        """Systematic form ``[I_k | P]`` of G plus the column permutation."""
        return self._generator.to_systematic()

    # ------------------------------------------------------------------
    # Encoding / mapping
    # ------------------------------------------------------------------
    def encode(self, message: Sequence[int]) -> np.ndarray:
        """Encode one k-bit message into an n-bit codeword (row-vector G)."""
        return self._generator.left_multiply_vector(as_bit_array(message, length=self.k))

    @cached_property
    def _packed_encode(self) -> PackedGF2Matmul:
        """Bit-sliced multiply by G, compiled once per code."""
        return PackedGF2Matmul(self._generator.to_array())

    @cached_property
    def _packed_syndrome(self) -> PackedGF2Matmul:
        """Bit-sliced multiply by H^T, compiled once per code."""
        return PackedGF2Matmul(self.parity_check.to_array().T)

    def encode_batch(self, messages: np.ndarray) -> np.ndarray:
        """Encode a whole batch of messages in one vectorised pass.

        The hot path of the streaming pipeline: messages are bit-sliced
        into ``uint64`` words (64 frames per word) and multiplied by G
        with a handful of XORs per codeword bit — see
        :class:`repro.gf2.bitpack.PackedGF2Matmul`.  Bit-identical to
        calling :meth:`encode` row by row.

        Parameters
        ----------
        messages : numpy.ndarray
            ``(batch, k)`` array of 0/1 message bits.

        Returns
        -------
        numpy.ndarray
            ``(batch, n)`` ``uint8`` array of codewords, row ``i``
            encoding ``messages[i]``.
        """
        msgs = np.asarray(messages, dtype=np.uint8)
        if msgs.ndim != 2 or msgs.shape[1] != self.k:
            raise DimensionError(f"expected (batch, {self.k}) messages, got {msgs.shape}")
        return self._packed_encode(msgs)

    def syndrome(self, received: Sequence[int]) -> np.ndarray:
        """Syndrome ``H r^T`` of a received word."""
        return self.parity_check.multiply_vector(as_bit_array(received, length=self.n))

    def syndrome_batch(self, received: np.ndarray) -> np.ndarray:
        """Syndromes of a batch of received words in one vectorised pass.

        Parameters
        ----------
        received : numpy.ndarray
            ``(batch, n)`` array of 0/1 received bits.

        Returns
        -------
        numpy.ndarray
            ``(batch, n - k)`` ``uint8`` array; row ``i`` is the
            syndrome ``H received[i]^T``.  Bit-identical to calling
            :meth:`syndrome` row by row.
        """
        r = np.asarray(received, dtype=np.uint8)
        if r.ndim != 2 or r.shape[1] != self.n:
            raise DimensionError(f"expected (batch, {self.n}) words, got {r.shape}")
        return self._packed_syndrome(r)

    def is_codeword(self, word: Sequence[int]) -> bool:
        """True iff ``word`` has zero syndrome."""
        return not self.syndrome(word).any()

    def extract_message(self, codeword: Sequence[int]) -> np.ndarray:
        """Recover the message from a *valid* codeword.

        Uses the verbatim message positions when available, otherwise
        solves the linear system against G.
        """
        cw = as_bit_array(codeword, length=self.n)
        if self._message_positions is not None:
            return cw[self._message_positions].copy()
        # Solve m G = cw  <=>  G^T m^T = cw^T.
        return self._generator.T.solve(cw)

    @cached_property
    def _message_recovery(self) -> Tuple[List[int], Optional[np.ndarray]]:
        """Pivot columns P and inverse A^-1 with ``m = cw[:, P] @ A^-1``.

        When the code carries the message verbatim the inverse is the
        identity and is elided (``None``).
        """
        if self._message_positions is not None:
            return list(self._message_positions), None
        _, pivots = self._generator.rref()
        sub = GF2Matrix(self._generator.to_array()[:, pivots])
        return list(pivots), sub.inverse().to_array()

    def extract_message_batch(self, codewords: np.ndarray) -> np.ndarray:
        """Recover messages from a batch of *valid* codewords.

        Vectorised companion of :meth:`extract_message`: selects a set
        of pivot positions ``P`` whose generator submatrix ``A`` is
        invertible (the verbatim message positions when the code has
        them, so this degenerates to a column gather) and computes
        ``m = cw[:, P] A^{-1}`` over GF(2).

        Parameters
        ----------
        codewords : numpy.ndarray
            ``(batch, n)`` array of valid codewords.

        Returns
        -------
        numpy.ndarray
            ``(batch, k)`` ``uint8`` array of messages, bit-identical to
            calling :meth:`extract_message` row by row.
        """
        cws = np.asarray(codewords, dtype=np.uint8)
        if cws.ndim != 2 or cws.shape[1] != self.n:
            raise DimensionError(f"expected (batch, {self.n}) codewords, got {cws.shape}")
        positions, inverse = self._message_recovery
        sub = cws[:, positions]
        if inverse is None:
            return np.ascontiguousarray(sub)
        return ((sub.astype(np.uint32) @ inverse.astype(np.uint32)) % 2).astype(np.uint8)

    # ------------------------------------------------------------------
    # Exhaustive structure (codes here are short: n <= ~24)
    # ------------------------------------------------------------------
    @cached_property
    def all_messages(self) -> np.ndarray:
        """All 2^k messages, shape ``(2^k, k)``, row i = MSB-first i."""
        return all_binary_vectors(self.k)

    @cached_property
    def all_codewords(self) -> np.ndarray:
        """All 2^k codewords aligned with :attr:`all_messages`."""
        return self.encode_batch(self.all_messages)

    @cached_property
    def weight_distribution(self) -> np.ndarray:
        """``A[w]`` = number of codewords of weight w, length n+1."""
        weights = self.all_codewords.sum(axis=1)
        return np.bincount(weights, minlength=self.n + 1)

    @cached_property
    def minimum_distance(self) -> int:
        """Exact minimum distance (minimum nonzero codeword weight).

        Short codes enumerate all 2^k codewords; larger codes search
        error weights incrementally for the lightest pattern with zero
        syndrome, which is exact and cheap while dmin stays small.
        """
        if self.k <= 16:
            dist = self.weight_distribution
            nonzero = np.nonzero(dist[1:])[0]
            if nonzero.size == 0:
                raise SingularMatrixError("code has no nonzero codewords")
            return int(nonzero[0]) + 1
        from repro.gf2.vectors import all_weight_w_vectors

        for weight in range(1, self.n + 1):
            for pattern in all_weight_w_vectors(self.n, weight):
                if not self.syndrome(pattern).any():
                    return weight
        raise SingularMatrixError("code has no nonzero codewords")

    @property
    def dmin(self) -> int:
        """Alias matching the paper's column header."""
        return self.minimum_distance

    def guaranteed_detection(self) -> int:
        """Max t such that *all* error patterns of weight <= t are detected."""
        return self.minimum_distance - 1

    def guaranteed_correction(self) -> int:
        """Max t such that *all* patterns of weight <= t are correctable."""
        return (self.minimum_distance - 1) // 2

    @cached_property
    def codeword_set(self) -> frozenset:
        """Codewords as a frozenset of byte strings (fast membership)."""
        return frozenset(cw.tobytes() for cw in self.all_codewords)

    @cached_property
    def codeword_index(self) -> Dict[bytes, int]:
        """Map codeword bytes -> message index."""
        return {cw.tobytes(): i for i, cw in enumerate(self.all_codewords)}

    # ------------------------------------------------------------------
    # Coset structure
    # ------------------------------------------------------------------
    @cached_property
    def coset_leaders(self) -> Dict[bytes, np.ndarray]:
        """Map syndrome bytes -> minimum-weight coset leader.

        Ties inside a coset are broken deterministically by the
        enumeration order of :func:`all_binary_vectors` restricted to
        increasing weight, i.e. the lexicographically-first pattern of the
        minimum weight wins.  This is the standard-array decoder used by
        :class:`~repro.coding.decoders.syndrome.SyndromeDecoder`.
        """
        leaders: Dict[bytes, np.ndarray] = {}
        zero_syndrome = np.zeros(self.redundancy, dtype=np.uint8)
        leaders[zero_syndrome.tobytes()] = np.zeros(self.n, dtype=np.uint8)
        total = 1 << self.redundancy
        # Enumerate patterns in order of increasing weight so the first
        # pattern hitting a syndrome is automatically a coset leader.
        from repro.gf2.vectors import all_weight_w_vectors

        for weight in range(1, self.n + 1):
            if len(leaders) == total:
                break
            for pattern in all_weight_w_vectors(self.n, weight):
                key = self.syndrome(pattern).tobytes()
                if key not in leaders:
                    leaders[key] = pattern
                    if len(leaders) == total:
                        break
        return leaders

    @cached_property
    def covering_radius(self) -> int:
        """Maximum coset-leader weight (exhaustive)."""
        return max(int(leader.sum()) for leader in self.coset_leaders.values())

    def is_perfect(self) -> bool:
        """True iff the Hamming bound is met with equality."""
        from math import comb

        t = self.guaranteed_correction()
        ball = sum(comb(self.n, w) for w in range(t + 1))
        return (1 << self.k) * ball == (1 << self.n)

    # ------------------------------------------------------------------
    def dual(self) -> "LinearBlockCode":
        """The dual code (generated by the parity-check matrix)."""
        return LinearBlockCode(self.parity_check, name=f"dual({self.name})")

    def __repr__(self) -> str:
        return f"<{self.name}: [n={self.n}, k={self.k}, d={self.minimum_distance}]>"

    def describe(self) -> Dict[str, object]:
        """Summary block used by reports."""
        return {
            "name": self.name,
            "n": self.n,
            "k": self.k,
            "rate": round(self.rate, 4),
            "dmin": self.minimum_distance,
            "guaranteed_detection": self.guaranteed_detection(),
            "guaranteed_correction": self.guaranteed_correction(),
            "perfect": self.is_perfect(),
            "covering_radius": self.covering_radius,
        }
