"""Gate-level cost model of the room-temperature decoders.

The paper's Fig. 1 places the decoder on the CMOS chip, and Section II
argues Hamming/RM codes are preferable to BCH partly on *decoding*
complexity.  This module prices each decoder strategy in CMOS
two-input-gate equivalents so that claim is quantified:

* syndrome computation — one XOR tree per parity-check row
  (``popcount(row) - 1`` two-input XORs each);
* complete/bounded syndrome decoding — a syndrome-indexed lookup
  (2^(n-k) x n table) plus n correction XORs;
* SEC-DED — the syndrome logic plus a comparator per codeword position
  and the detect flag;
* FHT (Green machine) — m * 2^m add/subtract butterflies at
  (2^m)-wide operands, plus the argmax tree;
* exhaustive ML — 2^k n-bit distance computations (the strawman).

The absolute numbers are generic-gate estimates, not a synthesis run;
they support *relative* comparisons (BCH vs Hamming, soft vs hard).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Dict

from repro.coding.linear import LinearBlockCode


@dataclass(frozen=True)
class DecoderCost:
    """Two-input-gate-equivalent cost breakdown of one decoder."""

    strategy: str
    xor_gates: int
    logic_gates: int     # AND/OR/MUX equivalents
    memory_bits: int     # lookup tables

    @property
    def total_gate_equivalents(self) -> int:
        """Gates + a 4-gates-per-memory-bit SRAM-ish conversion."""
        return self.xor_gates + self.logic_gates + ceil(self.memory_bits / 4)


def _syndrome_xor_gates(code: LinearBlockCode) -> int:
    h = code.parity_check.to_array()
    return int(sum(max(0, int(row.sum()) - 1) for row in h))


def syndrome_decoder_cost(code: LinearBlockCode) -> DecoderCost:
    """Complete coset-leader decoding via a syndrome-indexed table."""
    r = code.redundancy
    table_bits = (1 << r) * code.n
    # n correction XORs + an r-bit table address decode (~r gates/entry).
    return DecoderCost(
        strategy="syndrome",
        xor_gates=_syndrome_xor_gates(code) + code.n,
        logic_gates=(1 << r) * r,
        memory_bits=table_bits,
    )


def sec_ded_decoder_cost(code: LinearBlockCode) -> DecoderCost:
    """Correct-1/detect-2 decoding: column comparators, no leader table."""
    r = code.redundancy
    # Per position: r-bit equality comparator (r XNOR + (r-1) AND).
    comparators = code.n * (2 * r - 1)
    return DecoderCost(
        strategy="sec-ded",
        xor_gates=_syndrome_xor_gates(code) + code.n,
        logic_gates=comparators + r,  # + zero-syndrome detect
        memory_bits=0,
    )


def fht_decoder_cost(code: LinearBlockCode) -> DecoderCost:
    """Green-machine decoding of RM(1, m).

    m * 2^(m-1) butterflies, each an add/sub pair on (m+2)-bit words
    (~2*(m+2) gate equivalents per add), plus a 2^m-leaf argmax tree of
    (m+2)-bit comparators.
    """
    n = code.n
    m = int(log2(n))
    width = m + 2
    butterflies = m * (n // 2)
    adder_gates = butterflies * 2 * (5 * width)  # ripple add ~5 gates/bit
    compare_gates = (n - 1) * (2 * width)
    return DecoderCost(
        strategy="fht",
        xor_gates=0,
        logic_gates=adder_gates + compare_gates,
        memory_bits=0,
    )


def ml_decoder_cost(code: LinearBlockCode) -> DecoderCost:
    """Exhaustive nearest-codeword search (upper bound strawman)."""
    comparisons = (1 << code.k)
    popcount_gates = comparisons * 5 * code.n
    return DecoderCost(
        strategy="ml",
        xor_gates=comparisons * code.n,
        logic_gates=popcount_gates,
        memory_bits=(1 << code.k) * code.n,
    )


def decoder_cost_report(code: LinearBlockCode) -> Dict[str, DecoderCost]:
    """All applicable strategies for one code."""
    report = {
        "syndrome": syndrome_decoder_cost(code),
        "ml": ml_decoder_cost(code),
    }
    if code.minimum_distance >= 4:
        report["sec-ded"] = sec_ded_decoder_cost(code)
    n = code.n
    if n & (n - 1) == 0 and code.k == int(log2(n)) + 1:
        report["fht"] = fht_decoder_cost(code)
    return report
