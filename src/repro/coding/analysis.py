"""Exhaustive error-pattern analysis — the engine behind Table I.

For the short codes in this paper everything is exactly enumerable:
2^k codewords x C(n, w) error patterns per weight w.  Two views are
computed:

* **detection-only mode** — the receiver checks the syndrome and never
  corrects.  A pattern is *detected* iff its syndrome is nonzero, i.e.
  iff it is not itself a codeword; the per-weight detected count is
  ``C(n, w) - A_w`` with ``A_w`` the weight distribution.  This yields
  the paper's "28 out of the 35 possible 3-bit error patterns, an 80%
  detection rate" for Hamming(7,4).

* **correction mode** — a concrete decoder is run on every
  (codeword, pattern) pair and the outcome classified:

  - ``corrected``        message recovered, no flag;
  - ``corrected_flagged``  message recovered although the decoder
    flagged ambiguity (possible for tie-breaking decoders);
  - ``detected``         message wrong but the decoder raised its
    error flag (Fig. 1's "error flags" output);
  - ``silent``           message wrong and no flag — a miscorrection
    or an undetectable codeword-shaped error.

Decoders such as the FHT Green machine are *not* translation invariant
(the tie-break interacts with the codeword), so correction-mode results
are tallied over every transmitted codeword, and a pattern counts as
"guaranteed corrected" only when it is corrected for all of them.

The paper's Table I summary numbers follow these conventions (made
explicit here because the paper states them prose-style in Section
II-C):

* *worst-case detected* — what the deployed decoder guarantees to
  notice: ``dmin - 1`` when the decoder has a detect state (SEC-DED,
  FHT), but only the guaranteed-correction radius for a complete
  decoder of a perfect code (Hamming(7,4) miscorrects every 2-bit
  pattern silently, so only weight 1 is guaranteed noticed).
* *best-case detected* — ``dmin - 1``: all patterns up to that weight
  are detectable in detection-only mode.
* *worst-case corrected* — the guaranteed radius ``(dmin - 1) // 2``.
* *best-case corrected* — the largest weight at which the paired
  decoder corrects at least one pattern for at least one codeword
  (2 for RM(1,3) under FHT decoding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import comb
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.coding.decoders.base import Decoder
from repro.coding.linear import LinearBlockCode
from repro.gf2.vectors import all_weight_w_vectors


@dataclass(frozen=True)
class WeightProfile:
    """Correction-mode outcome counts for one error weight.

    ``total`` counts (codeword, pattern) pairs, i.e. ``2^k * C(n, w)``.
    Two notions of success are tracked:

    * *message survived* (``corrected``/``corrected_flagged``) — what
      Fig. 5 counts: the delivered 4-bit message equals the transmitted
      one, whether by true correction or by the detect-and-fallback
      policy happening to preserve the message bits;
    * *codeword recovered* (``strict_corrected``) — the decoder returned
      exactly the transmitted codeword, the strict Table-I sense of
      "errors corrected".
    """

    weight: int
    total: int
    corrected: int
    corrected_flagged: int
    detected: int
    silent: int
    strict_corrected: int
    guaranteed_corrected_patterns: int
    some_corrected_patterns: int
    some_strict_corrected_patterns: int
    pattern_count: int

    @property
    def all_corrected(self) -> bool:
        """Every pattern of this weight corrected for every codeword."""
        return self.corrected + self.corrected_flagged == self.total

    @property
    def all_noticed(self) -> bool:
        """No silent wrong message at this weight."""
        return self.silent == 0

    @property
    def any_corrected(self) -> bool:
        return self.some_corrected_patterns > 0

    @property
    def any_strict_corrected(self) -> bool:
        return self.some_strict_corrected_patterns > 0


@dataclass(frozen=True)
class DetectionProfile:
    """Detection-only mode counts for one error weight."""

    weight: int
    total_patterns: int
    detected_patterns: int

    @property
    def all_detected(self) -> bool:
        return self.detected_patterns == self.total_patterns

    @property
    def detection_rate(self) -> float:
        if self.total_patterns == 0:
            return 1.0
        return self.detected_patterns / self.total_patterns


def detection_profile(code: LinearBlockCode, weight: int) -> DetectionProfile:
    """Detection-only analysis at one weight: detected = non-codeword.

    Uses the weight distribution, so it is exact and O(1) once the
    distribution is cached.
    """
    total = comb(code.n, weight)
    undetected = int(code.weight_distribution[weight]) if weight > 0 else 0
    return DetectionProfile(
        weight=weight,
        total_patterns=total,
        detected_patterns=total - undetected,
    )


def detection_profiles(code: LinearBlockCode, max_weight: Optional[int] = None) -> List[DetectionProfile]:
    """Detection-only profiles for weights 1..max_weight (default n)."""
    top = code.n if max_weight is None else max_weight
    return [detection_profile(code, w) for w in range(1, top + 1)]


def correction_profile(code: LinearBlockCode, decoder: Decoder, weight: int) -> WeightProfile:
    """Run ``decoder`` on every (codeword, weight-w pattern) pair."""
    messages = code.all_messages
    codewords = code.all_codewords
    corrected = corrected_flagged = detected = silent = strict = 0
    guaranteed = some = some_strict = 0
    pattern_count = 0
    for pattern in all_weight_w_vectors(code.n, weight):
        pattern_count += 1
        wins = 0
        strict_wins = 0
        for msg, cw in zip(messages, codewords):
            result = decoder.decode(cw ^ pattern)
            ok = bool((result.message == msg).all())
            if result.codeword is not None and bool((result.codeword == cw).all()):
                strict += 1
                strict_wins += 1
            if ok and not result.detected_uncorrectable:
                corrected += 1
                wins += 1
            elif ok:
                corrected_flagged += 1
                wins += 1
            elif result.detected_uncorrectable:
                detected += 1
            else:
                silent += 1
        if wins == len(messages):
            guaranteed += 1
        if wins > 0:
            some += 1
        if strict_wins > 0:
            some_strict += 1
    total = pattern_count * len(messages)
    return WeightProfile(
        weight=weight,
        total=total,
        corrected=corrected,
        corrected_flagged=corrected_flagged,
        detected=detected,
        silent=silent,
        strict_corrected=strict,
        guaranteed_corrected_patterns=guaranteed,
        some_corrected_patterns=some,
        some_strict_corrected_patterns=some_strict,
        pattern_count=pattern_count,
    )


def correction_profiles(
    code: LinearBlockCode, decoder: Decoder, max_weight: Optional[int] = None
) -> List[WeightProfile]:
    """Correction-mode profiles for weights 1..max_weight (default 4)."""
    top = min(code.n, 4 if max_weight is None else max_weight)
    return [correction_profile(code, decoder, w) for w in range(1, top + 1)]


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I."""

    code_name: str
    dmin: int
    worst_detected: int
    worst_corrected: int
    best_detected: int
    best_corrected: int


def decoder_has_detect_state(code: LinearBlockCode, decoder: Decoder) -> bool:
    """True if the decoder can raise its flag on some weight<=dmin-1 input.

    A complete decoder of a perfect code (Hamming(7,4) + syndrome
    decoding) never flags; SEC-DED and tie-breaking decoders do.
    """
    for weight in range(1, code.minimum_distance):
        profile = correction_profile(code, decoder, weight)
        if profile.detected > 0 or profile.corrected_flagged > 0:
            return True
    # Also probe weight = dmin in case the detect state only appears there.
    profile = correction_profile(code, decoder, code.minimum_distance)
    return profile.detected > 0 or profile.corrected_flagged > 0


def table1_row(code: LinearBlockCode, decoder: Decoder) -> Table1Row:
    """Compute the paper's Table I summary for one code/decoder pair.

    Conventions (see module docstring): worst-case reflects the deployed
    decoder — a complete decoder of a perfect code only guarantees
    noticing the correction radius, a flagging decoder guarantees the
    code's ``dmin - 1`` detection capability.  Best-case detection adds
    one weight when detection-only mode still detects *some* patterns at
    weight ``dmin`` (Hamming(7,4): 28/35) and the worst-case guarantee
    sat below ``dmin - 1``.  Best-case correction is the largest
    contiguous weight at which the decoder *recovers the transmitted
    codeword* for at least one (codeword, pattern) pair.
    """
    dmin = code.minimum_distance
    guaranteed_correction = (dmin - 1) // 2

    profiles = {w: correction_profile(code, decoder, w) for w in range(1, min(code.n, dmin) + 1)}

    if decoder_has_detect_state(code, decoder):
        worst_detected = dmin - 1
        best_detected = dmin - 1
    else:
        # Complete decoder: silent miscorrection beyond the packing radius,
        # so the guarantee stops at the correction radius; detection-only
        # operation could still catch most weight-dmin patterns (the
        # paper's 80 % remark), which is the "best case".
        worst_detected = guaranteed_correction
        best_detected = dmin if detection_profile(code, dmin).detected_patterns > 0 else dmin - 1

    best_corrected = 0
    for weight in sorted(profiles):
        if profiles[weight].any_strict_corrected:
            best_corrected = weight
        else:
            break

    return Table1Row(
        code_name=code.name,
        dmin=dmin,
        worst_detected=worst_detected,
        worst_corrected=guaranteed_correction,
        best_detected=best_detected,
        best_corrected=best_corrected,
    )


def hamming74_three_bit_detection(code: LinearBlockCode) -> Dict[str, float]:
    """The Section II-C claim: 28 of 35 weight-3 patterns detectable.

    Returns the detected count, total count and rate for weight-3
    patterns in detection-only mode.
    """
    profile = detection_profile(code, 3)
    return {
        "detected": profile.detected_patterns,
        "total": profile.total_patterns,
        "rate": profile.detection_rate,
    }


def miscorrection_targets(code: LinearBlockCode, weight: int) -> Dict[bytes, np.ndarray]:
    """For each weight-``weight`` pattern, the coset leader it aliases to.

    Used to demonstrate the Hamming(7,4) miscorrection mechanism: a
    2-bit error shares its syndrome with a 1-bit coset leader, so the
    complete decoder flips a third bit.
    """
    out: Dict[bytes, np.ndarray] = {}
    for pattern in all_weight_w_vectors(code.n, weight):
        syndrome = code.syndrome(pattern)
        leader = code.coset_leaders[syndrome.tobytes()]
        out[pattern.tobytes()] = leader
    return out
