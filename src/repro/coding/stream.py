"""Online sliding-window decoding of convolutionally-interleaved streams.

The composites in :mod:`repro.coding.interleave` spread a burst *within*
one composite word; a real link interleaves *across* frames instead: a
convolutional (Forney/Ramsey) layout delays bit class ``j mod depth`` by
``(j mod depth) * shift`` frames, so one obliterated channel frame
scatters into ``depth`` different source codewords, each losing only
``~n/depth`` bits — well inside a soft decoder's erasure tolerance.

The cost of cross-frame spreading is *latency*: source codeword ``c`` is
only fully present on the channel once frame ``c + (depth-1)*shift`` has
arrived.  Offline that is a non-event (:func:`deinterleave_stream`
gathers everything after the fact); online it is the whole problem — the
superconducting decoders this repo tracks (QECOOL, NEO-QEC) must emit
decisions under a hard latency budget.  :class:`SlidingWindowDecoder` is
the online half: it holds the bounded soft window of still-open
codewords, commits each one through the decoder's vectorised soft kernel
the moment its last contribution arrives (bit-identical to the offline
decode, because it is the same kernel on the same values), and can be
*forced* to emit best-effort decisions for codewords whose windows have
not closed when a deadline expires — missing contributions decode as
zero-confidence erasures, which the correlation soft kernel handles
natively.

Frames are float confidence rows in the BPSK convention of
:meth:`~repro.coding.decoders.base.Decoder.decode_soft_batch_detailed`
(positive = looks like 0, magnitude = reliability); hard bits map in as
``1 - 2*bit``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coding.decoders.base import Decoder
from repro.errors import DimensionError

__all__ = [
    "StreamDecisions",
    "SlidingWindowDecoder",
    "interleave_stream",
    "deinterleave_stream",
    "stream_span",
]


def _check_layout(n: int, depth: int, shift: int) -> np.ndarray:
    """Validate a convolutional stream layout; returns per-bit frame delays."""
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    if shift < 0:
        raise ValueError(f"shift must be non-negative, got {shift}")
    if n < 1:
        raise ValueError(f"frame width must be >= 1, got {n}")
    return (np.arange(n, dtype=np.int64) % depth) * shift


def stream_span(depth: int, shift: int = 1) -> int:
    """Frames of lookahead the layout needs: ``(depth - 1) * shift``.

    Source codeword ``c`` is complete on the channel only once channel
    frame ``c + stream_span(depth, shift)`` has arrived; this is both
    the interleaver's added stream length and the sliding window's
    intrinsic decision latency (in frames).
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    if shift < 0:
        raise ValueError(f"shift must be non-negative, got {shift}")
    return (depth - 1) * shift


def interleave_stream(
    codewords: np.ndarray, depth: int, shift: int = 1
) -> np.ndarray:
    """Convolutionally interleave ``(count, n)`` codewords across frames.

    Channel frame ``t`` position ``j`` carries source codeword
    ``t - (j mod depth) * shift`` position ``j`` — each of the ``depth``
    bit classes rides its own delay line, exactly the staggered layout
    of a :class:`~repro.coding.interleave.ConvolutionalInterleaver`
    transposed onto the frame axis.  Positions whose source index falls
    outside the stream (the ramp-up head and tail) are zero.

    Works on any dtype (hard bits or float confidences).  Returns
    ``(count + stream_span(depth, shift), n)`` channel frames;
    :func:`deinterleave_stream` is the exact inverse on the in-range
    positions.
    """
    words = np.asarray(codewords)
    if words.ndim != 2:
        raise DimensionError(
            f"expected a (count, n) codeword array, got shape {words.shape}"
        )
    delays = _check_layout(words.shape[1], depth, shift)
    count = words.shape[0]
    span = (depth - 1) * shift
    channel = np.zeros((count + span, words.shape[1]), dtype=words.dtype)
    for delay in np.unique(delays):
        mask = delays == delay
        channel[delay : delay + count, mask] = words[:, mask]
    return channel


def deinterleave_stream(
    frames: np.ndarray, depth: int, shift: int = 1
) -> np.ndarray:
    """Invert :func:`interleave_stream`: gather codewords from channel frames.

    ``frames`` must hold at least ``stream_span(depth, shift)`` rows (a
    shorter stream contains no complete codeword).  Returns the
    ``(len(frames) - span, n)`` source codewords; this is the *offline*
    reference decode path that :class:`SlidingWindowDecoder` matches
    bit-for-bit when it is never forced.
    """
    arr = np.asarray(frames)
    if arr.ndim != 2:
        raise DimensionError(
            f"expected a (frames, n) channel array, got shape {arr.shape}"
        )
    delays = _check_layout(arr.shape[1], depth, shift)
    span = (depth - 1) * shift
    count = arr.shape[0] - span
    if count < 0:
        raise DimensionError(
            f"need at least {span} channel frames for depth={depth} "
            f"shift={shift}, got {arr.shape[0]}"
        )
    words = np.empty((count, arr.shape[1]), dtype=arr.dtype)
    for delay in np.unique(delays):
        mask = delays == delay
        words[:, mask] = arr[delay : delay + count, mask]
    return words


@dataclass(frozen=True)
class StreamDecisions:
    """A contiguous run of committed codeword decisions.

    Attributes
    ----------
    first_index : int
        Source-codeword index of row 0; row ``i`` decides codeword
        ``first_index + i``.
    messages : numpy.ndarray
        ``(count, k)`` decoded message bits.
    corrected_errors : numpy.ndarray
        Bits the decoder repaired per codeword.
    detected_uncorrectable : numpy.ndarray
        Per-codeword detected-uncorrectable flags.
    forced : bool
        ``True`` when these decisions came from :meth:`SlidingWindowDecoder.force`
        — i.e. the window had not closed and missing contributions were
        treated as erasures.
    """

    first_index: int
    messages: np.ndarray
    corrected_errors: np.ndarray
    detected_uncorrectable: np.ndarray
    forced: bool = False

    def __len__(self) -> int:
        return int(self.messages.shape[0])


class SlidingWindowDecoder:
    """Online decoder for a convolutionally-interleaved frame stream.

    Maintains the bounded soft window of *open* codewords — those that
    have received some but not all of their channel contributions.  Each
    :meth:`push` scatters the new frames' positions into the window,
    commits every codeword whose window closed (their values are then
    identical to the offline :func:`deinterleave_stream` gather, so the
    decisions are bit-identical to offline decoding), and returns the
    decisions in stream order.  :meth:`force` emits best-effort
    decisions for codewords whose windows are still open, decoding the
    missing positions as zero-confidence erasures — the graceful
    degradation a latency deadline buys.

    The window occupancy is intrinsically bounded: after any push it
    holds exactly ``stream_span(depth, shift)`` codewords (fewer near
    the stream head or after a force), independent of stream length.

    Parameters
    ----------
    decoder:
        Constituent decoder; must support
        :meth:`~repro.coding.decoders.base.Decoder.decode_soft_batch_detailed`.
    depth:
        Number of cross-frame delay lines (bit classes).
    shift:
        Extra frame delay per class; defaults to 1.
    """

    def __init__(self, decoder: Decoder, depth: int, shift: int = 1):
        self.decoder = decoder
        self.depth = depth
        self.shift = shift
        self.n = decoder.code.n
        self.k = decoder.code.k
        self._delays = _check_layout(self.n, depth, shift)
        self.span = (depth - 1) * shift
        self._masks = [
            (int(delay), self._delays == delay) for delay in np.unique(self._delays)
        ]
        # Window row i holds the soft values of codeword _next_commit + i;
        # positions not yet arrived (or forcibly skipped) stay 0.0 and
        # decode as erasures.
        self._window = np.zeros((0, self.n), dtype=np.float64)
        self._next_push = 0    # next expected channel-frame index
        self._next_commit = 0  # oldest codeword without a decision

    @property
    def pending(self) -> int:
        """Codewords currently open (pushed into but not yet decided)."""
        return self._next_push - self._next_commit

    @property
    def next_frame_index(self) -> int:
        """Channel-frame index the next :meth:`push` must start at."""
        return self._next_push

    def _check_frames(self, frames: np.ndarray) -> np.ndarray:
        arr = np.asarray(frames, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.n:
            raise DimensionError(
                f"expected (frames, {self.n}) confidence rows, got {arr.shape}"
            )
        return arr

    def push(self, frames: np.ndarray) -> StreamDecisions:
        """Absorb the next channel frames; commit every closed window.

        ``frames`` are the next ``m`` channel frames, in order, as float
        confidence rows.  Each opens one codeword (its zero-delay
        class); contributions addressed to codewords already decided by
        an earlier :meth:`force` are dropped — those decisions are
        final.  Returns the decisions for every codeword whose last
        contribution arrived in this push (possibly zero of them while
        the pipeline fills).
        """
        arr = self._check_frames(frames)
        m = arr.shape[0]
        if m:
            self._window = np.concatenate(
                [self._window, np.zeros((m, self.n), dtype=np.float64)]
            )
            # Frame t0+i lands its class-d positions in codeword t0+i-d.
            rows = self._next_push + np.arange(m, dtype=np.int64) - self._next_commit
            for delay, mask in self._masks:
                target = rows - delay
                valid = target >= 0
                if valid.any():
                    self._window[np.ix_(target[valid], mask)] = arr[valid][:, mask]
            self._next_push += m
        ready = self._next_push - self.span - self._next_commit
        return self._commit(max(0, min(ready, self.pending)), forced=False)

    def force(self, count: int) -> StreamDecisions:
        """Decide the ``count`` oldest open codewords *now*, ready or not.

        Positions whose channel frames have not arrived decode as
        zero-confidence erasures.  Late contributions for a forced
        codeword are discarded by subsequent pushes; the stream stays
        consistent, the forced decisions are simply best-effort.  Used
        by the service when a latency deadline expires.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return self._commit(min(count, self.pending), forced=True)

    def flush(self) -> StreamDecisions:
        """Decide everything still open (end-of-stream drain)."""
        return self._commit(self.pending, forced=True)

    def _commit(self, count: int, forced: bool) -> StreamDecisions:
        first = self._next_commit
        if count == 0:
            return StreamDecisions(
                first_index=first,
                messages=np.zeros((0, self.k), dtype=np.uint8),
                corrected_errors=np.zeros(0, dtype=np.int64),
                detected_uncorrectable=np.zeros(0, dtype=bool),
                forced=forced,
            )
        block = self._window[:count]
        self._window = self._window[count:]
        self._next_commit += count
        result = self.decoder.decode_soft_batch_detailed(block)
        return StreamDecisions(
            first_index=first,
            messages=result.messages,
            corrected_errors=result.corrected_errors,
            detected_uncorrectable=result.detected_uncorrectable,
            forced=forced,
        )

    def __repr__(self) -> str:
        return (
            f"<SlidingWindowDecoder depth={self.depth} shift={self.shift} "
            f"span={self.span} pending={self.pending}>"
        )
