"""Classical bounds on binary block codes.

Section II of the paper leans on several structural facts — Hamming
codes are *perfect* (Ref. [30], Tietäväinen), the extended code is
quasi-perfect, short BCH codes buy little distance for their cost.
This module makes those claims checkable: packing (Hamming), Singleton,
Plotkin and Griesmer upper bounds on code size/length, the
Gilbert–Varshamov existence bound, and classification helpers.
"""

from __future__ import annotations

from math import comb
from typing import Dict, Optional

from repro.coding.linear import LinearBlockCode


def hamming_bound_max_codewords(n: int, dmin: int) -> int:
    """Sphere-packing bound: max |C| for length n, distance dmin."""
    if n < 1 or dmin < 1:
        raise ValueError("n and dmin must be positive")
    t = (dmin - 1) // 2
    ball = sum(comb(n, w) for w in range(t + 1))
    return (1 << n) // ball


def singleton_bound_max_dimension(n: int, dmin: int) -> int:
    """Singleton bound: k <= n - d + 1."""
    if dmin > n:
        raise ValueError("dmin cannot exceed n")
    return n - dmin + 1


def plotkin_bound_max_codewords(n: int, dmin: int) -> Optional[int]:
    """Plotkin bound, applicable when ``2*dmin > n`` (paper Ref. [33]).

    Returns ``None`` when the bound does not apply.
    """
    if 2 * dmin > n:
        return 2 * (dmin // (2 * dmin - n))
    return None


def griesmer_bound_min_length(k: int, dmin: int) -> int:
    """Griesmer bound: shortest possible length of a [n, k, d] code."""
    if k < 1 or dmin < 1:
        raise ValueError("k and dmin must be positive")
    length = 0
    for i in range(k):
        length += -(-dmin // (1 << i))  # ceil division
    return length


def gilbert_varshamov_exists(n: int, k: int, dmin: int) -> bool:
    """GV condition guaranteeing a linear [n, k, >=d] code exists."""
    if k > n:
        raise ValueError("k cannot exceed n")
    volume = sum(comb(n - 1, w) for w in range(dmin - 1))
    return volume < (1 << (n - k))


def meets_hamming_bound(code: LinearBlockCode) -> bool:
    """True iff the code is perfect (packing bound met with equality)."""
    t = code.guaranteed_correction()
    ball = sum(comb(code.n, w) for w in range(t + 1))
    return (1 << code.k) * ball == (1 << code.n)


def is_quasi_perfect(code: LinearBlockCode) -> bool:
    """Quasi-perfect: covering radius = packing radius + 1.

    The paper calls the extended Hamming(8,4) code "quasi-perfect"
    (Section II-A); this verifies it from the coset structure.
    """
    return code.covering_radius == code.guaranteed_correction() + 1


def is_mds(code: LinearBlockCode) -> bool:
    """Maximum distance separable: meets Singleton with equality."""
    return code.k == singleton_bound_max_dimension(code.n, code.minimum_distance)


def bound_report(code: LinearBlockCode) -> Dict[str, object]:
    """All bound checks for one code, for reports and tests."""
    n, k, d = code.n, code.k, code.minimum_distance
    plotkin = plotkin_bound_max_codewords(n, d)
    return {
        "name": code.name,
        "n": n,
        "k": k,
        "dmin": d,
        "hamming_bound_max": hamming_bound_max_codewords(n, d),
        "meets_hamming_bound": meets_hamming_bound(code),
        "quasi_perfect": is_quasi_perfect(code),
        "singleton_max_k": singleton_bound_max_dimension(n, d),
        "mds": is_mds(code),
        "plotkin_max": plotkin,
        "meets_plotkin": plotkin is not None and (1 << k) == plotkin,
        "griesmer_min_n": griesmer_bound_min_length(k, d),
        "meets_griesmer": griesmer_bound_min_length(k, d) == n,
        "gv_guaranteed": gilbert_varshamov_exists(n, k, d),
    }
