"""Single-parity-check codes — detection-only baseline."""

from __future__ import annotations

import numpy as np

from repro.coding.linear import LinearBlockCode
from repro.gf2.matrix import GF2Matrix


def parity_check_code(k: int) -> LinearBlockCode:
    """The [k+1, k, 2] single-parity-check code (message + XOR of all)."""
    if k < 1:
        raise ValueError("message length must be >= 1")
    g = np.concatenate(
        [np.eye(k, dtype=np.uint8), np.ones((k, 1), dtype=np.uint8)], axis=1
    )
    return LinearBlockCode(
        GF2Matrix(g),
        name=f"Parity({k + 1},{k})",
        message_positions=list(range(k)),
    )
