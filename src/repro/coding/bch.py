"""Narrow-sense binary BCH codes.

Section II of the paper notes that BCH codes are "algebraically
equivalent to Hamming codes at short lengths" but carry higher
encoding/decoding complexity, making them less suitable at 4.2 K.  This
module builds the family so the ablation benches can quantify that cost
claim (JJ count of a BCH encoder synthesised by the generic builder vs.
the lightweight three).

Construction: for block length n = 2^m - 1 and design distance
delta = 2t + 1, the generator polynomial is
``g(x) = lcm(M_1(x), M_3(x), ..., M_{2t-1}(x))`` with M_i the minimal
polynomial of alpha^i over GF(2).  Encoding is systematic-polynomial:
the generator matrix rows are ``x^{n-k+i} mod g(x)`` appended to the
identity, giving message bits verbatim in the high positions.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.coding.linear import LinearBlockCode
from repro.gf2.field import GF2mField
from repro.gf2.matrix import GF2Matrix
from repro.gf2.polynomials import GF2Polynomial, lcm


def bch_generator_polynomial(m: int, t: int) -> GF2Polynomial:
    """Generator polynomial of the narrow-sense BCH code over GF(2^m).

    Parameters
    ----------
    m:
        Field extension degree; block length is ``2^m - 1``.
    t:
        Design error-correction capability (design distance 2t+1).
    """
    if t < 1:
        raise ValueError("t must be >= 1")
    field = GF2mField(m)
    n = field.order
    if 2 * t >= n:
        raise ValueError(f"t={t} too large for block length {n}")
    minimal_polys: List[GF2Polynomial] = []
    seen = set()
    for i in range(1, 2 * t + 1):
        poly = field.minimal_polynomial(field.alpha_power(i))
        if poly not in seen:
            seen.add(poly)
            minimal_polys.append(poly)
    return lcm(minimal_polys)


def bch_code(m: int, t: int) -> LinearBlockCode:
    """The narrow-sense BCH code of length 2^m - 1 correcting t errors.

    The returned code is systematic with message bits in the *last* k
    codeword positions (polynomial encoding convention: codeword =
    parity || message with message carried by the high-degree terms).
    """
    g_poly = bch_generator_polynomial(m, t)
    n = (1 << m) - 1
    r = g_poly.degree
    k = n - r
    if k <= 0:
        raise ValueError(f"BCH(m={m}, t={t}) has no information bits (k={k})")
    rows = np.zeros((k, n), dtype=np.uint8)
    for i in range(k):
        # message bit i (of m1..mk, MSB-first) sits at codeword position
        # r + i; its parity contribution is x^{n-1-i} mod g(x).
        shifted = GF2Polynomial.x_power(n - 1 - i)
        remainder = shifted % g_poly
        coeffs = remainder.coefficients()
        # parity occupies positions 0..r-1 holding coeff of x^{r-1-j}
        for j in range(coeffs.size):
            rows[i, r - 1 - j] = coeffs[j]
        rows[i, r + i] = 1
    return LinearBlockCode(
        GF2Matrix(rows),
        name=f"BCH({n},{k})",
        message_positions=list(range(r, n)),
    )


def bch_15_7() -> LinearBlockCode:
    """BCH(15,7) with t=2 — the classic double-error-correcting code."""
    return bch_code(m=4, t=2)


def bch_15_11() -> LinearBlockCode:
    """BCH(15,11) with t=1 — algebraically the Hamming(15,11) code."""
    return bch_code(m=4, t=1)
