"""Interleaving and code concatenation: burst resilience by composition.

A lightweight code that corrects one flip per word is helpless against
a burst that lands several flips in the same word.  The classical fix
is to *compose* codes rather than grow them:

* **Interleaving** permutes the transmitted stream so that a burst of
  consecutive channel errors lands at most once per constituent
  codeword.  :class:`BlockInterleaver` and
  :class:`ConvolutionalInterleaver` are pure stream permutations;
  :class:`InterleavedCode` packages ``depth`` copies of a base code
  plus the permutation as a single
  :class:`~repro.coding.linear.LinearBlockCode` — interleaving is
  linear, so the composite has an ordinary generator matrix and every
  existing batch/soft kernel applies to it unchanged.
* **Concatenation** (:class:`ConcatenatedCode`) feeds an outer code's
  codeword through an inner code block by block, multiplying the
  minimum distances for a modest rate cost.

Both composites come with wrapper decoders
(:class:`InterleavedDecoder`, :class:`ConcatenatedDecoder`) that
decode through the constituent decoders — vectorised by reshaping the
batch, so a composite decode is a handful of base-kernel calls, never
a per-frame Python loop.  The registry exposes the composites as
``interleaved:<base>:<depth>`` / ``concatenated:<outer>:<inner>`` code
names and ``interleaved`` / ``concatenated`` decoder strategies (see
:mod:`repro.coding.registry`).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.coding.decoders import default_decoder_for
from repro.coding.decoders.base import BatchDecodeResult, Decoder, DecodeResult
from repro.coding.linear import LinearBlockCode
from repro.errors import DimensionError
from repro.gf2.bitpack import pack_rows, packed_hamming_distance


class StreamInterleaver:
    """A fixed permutation of ``n`` stream positions.

    Subclasses only construct the reading order; this base class holds
    the permutation, its inverse, and the (de)interleaving kernels —
    fancy-indexed column gathers that work on any dtype, so the same
    interleaver reorders hard bits and float confidences alike.

    Parameters
    ----------
    permutation:
        Reading order: output position ``j`` carries input position
        ``permutation[j]``.  Must be a permutation of ``range(n)``.
    """

    def __init__(self, permutation: Sequence[int]):
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.ndim != 1:
            raise DimensionError(f"permutation must be 1-D, got shape {perm.shape}")
        n = perm.shape[0]
        if n and (np.sort(perm) != np.arange(n)).any():
            raise ValueError("permutation must rearrange range(n) exactly once each")
        self._perm = perm
        inverse = np.empty(n, dtype=np.int64)
        inverse[perm] = np.arange(n)
        self._inverse = inverse

    @property
    def n(self) -> int:
        """Stream length the interleaver permutes."""
        return int(self._perm.shape[0])

    @property
    def permutation(self) -> np.ndarray:
        """Copy of the reading order (output j <- input ``perm[j]``)."""
        return self._perm.copy()

    def _check(self, frames: np.ndarray) -> np.ndarray:
        arr = np.asarray(frames)
        if arr.ndim != 2 or arr.shape[1] != self.n:
            raise DimensionError(
                f"expected (batch, {self.n}) frames, got {arr.shape}"
            )
        return arr

    def interleave(self, frames: np.ndarray) -> np.ndarray:
        """Permute each row of a ``(batch, n)`` array into channel order.

        Works on any dtype (hard ``uint8`` bits or float confidences);
        a batch of zero rows passes through as an empty array.
        """
        return np.ascontiguousarray(self._check(frames)[:, self._perm])

    def deinterleave(self, frames: np.ndarray) -> np.ndarray:
        """Invert :meth:`interleave` row for row.

        ``deinterleave(interleave(x))`` is the identity for every batch
        shape — the property ``tests/test_interleave.py`` checks with
        hypothesis.
        """
        return np.ascontiguousarray(self._check(frames)[:, self._inverse])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} n={self.n}>"


class BlockInterleaver(StreamInterleaver):
    """Row-write / column-read block interleaver.

    The stream is written row-major into ``depth`` rows of
    ``ceil(n / depth)`` columns (the last row may be ragged when
    ``depth`` does not divide ``n``) and read column-major, skipping
    the missing cells.  When ``depth`` divides ``n``, any ``depth``
    consecutive output positions come from ``depth`` *different* rows,
    so a channel burst of length <= ``depth`` touches each row — each
    constituent codeword, in the :class:`InterleavedCode` layout — at
    most once.  With a ragged last row the skipped cells shorten some
    columns, so a burst straddling a column boundary can touch one row
    twice; the full guarantee needs a divisible length (which
    :class:`InterleavedCode` always has).

    Parameters
    ----------
    n:
        Stream length.
    depth:
        Number of rows; ``depth=1`` is the identity permutation.
    """

    def __init__(self, n: int, depth: int):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        cols = math.ceil(n / depth) if n else 0
        grid = np.arange(depth * cols, dtype=np.int64).reshape(depth, cols)
        perm = grid.T.ravel()
        super().__init__(perm[perm < n])


class ConvolutionalInterleaver(StreamInterleaver):
    """Helical (diagonal-read) interleaver — the convolutional layout.

    Output position ``t`` reads row ``t mod depth`` at column
    ``(t // depth + (t mod depth) * shift) mod (n / depth)``: each row
    is delayed by ``shift`` more columns than the one above, the
    frame-aligned analogue of a Forney/Ramsey convolutional
    interleaver's staggered delay lines.  Unlike the block layout, two
    bursts a full column apart cannot hit the same pair of rows in the
    same positions, which spreads *repeated* bursts more evenly.

    Requires ``depth`` to divide ``n`` (the diagonal walk is only a
    permutation on a full rectangle); :class:`BlockInterleaver` handles
    ragged lengths.

    Parameters
    ----------
    n:
        Stream length; must be a multiple of ``depth``.
    depth:
        Number of rows (delay lines).
    shift:
        Extra column delay per row; defaults to 1.
    """

    def __init__(self, n: int, depth: int, shift: int = 1):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if n % depth:
            raise ValueError(
                f"depth {depth} must divide the stream length {n} "
                "(use BlockInterleaver for ragged lengths)"
            )
        if shift < 0:
            raise ValueError(f"shift must be non-negative, got {shift}")
        self.depth = depth
        self.shift = shift
        cols = n // depth
        t = np.arange(n, dtype=np.int64)
        rows = t % depth
        if cols:
            col = (t // depth + rows * shift) % cols
        else:
            col = t // depth
        super().__init__(rows * cols + col)


class InterleavedCode(LinearBlockCode):
    """``depth`` copies of a base code, bit-interleaved into one word.

    The composite is itself linear: its generator is the block-diagonal
    stack of the base generator with the interleaver's permutation
    applied to the columns, so ``encode_batch``/``syndrome_batch`` and
    every decoder in the hierarchy work on it unchanged.  A codeword is
    the interleaved concatenation of ``depth`` base codewords; message
    bits are the concatenation of the ``depth`` base messages in order.

    Rate and minimum distance equal the base code's — what interleaving
    buys is not distance but *burst immunity*: a channel burst of
    length <= ``depth`` lands at most one flip in each constituent
    word, inside the base decoder's correction radius.

    Parameters
    ----------
    base_code:
        The constituent code, repeated ``depth`` times.
    depth:
        Number of constituent codewords per composite word.
    interleaver:
        Stream permutation over ``base_code.n * depth`` positions;
        defaults to a :class:`BlockInterleaver` of ``depth`` rows.
    """

    def __init__(
        self,
        base_code: LinearBlockCode,
        depth: int,
        interleaver: Optional[StreamInterleaver] = None,
    ):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        n, k = base_code.n, base_code.k
        total_n = n * depth
        if interleaver is None:
            interleaver = BlockInterleaver(total_n, depth)
        if interleaver.n != total_n:
            raise DimensionError(
                f"interleaver permutes {interleaver.n} positions, "
                f"code stream has {total_n}"
            )
        perm = interleaver.permutation
        base_g = base_code.generator.to_array()
        stacked_g = np.zeros((k * depth, total_n), dtype=np.uint8)
        for r in range(depth):
            stacked_g[r * k : (r + 1) * k, r * n : (r + 1) * n] = base_g
        base_h = base_code.parity_check.to_array()
        stacked_h = np.zeros(((n - k) * depth, total_n), dtype=np.uint8)
        for r in range(depth):
            stacked_h[
                r * (n - k) : (r + 1) * (n - k), r * n : (r + 1) * n
            ] = base_h
        message_positions = None
        base_positions = base_code.message_positions
        if base_positions is not None:
            inverse = np.empty(total_n, dtype=np.int64)
            inverse[perm] = np.arange(total_n)
            message_positions = [
                int(inverse[r * n + p]) for r in range(depth) for p in base_positions
            ]
        super().__init__(
            stacked_g[:, perm],
            name=f"Interleaved({base_code.name}, depth={depth})",
            message_positions=message_positions,
            parity_check=stacked_h[:, perm],
        )
        self.base_code = base_code
        self.depth = depth
        self.interleaver = interleaver

    @property
    def minimum_distance(self) -> int:
        """The base code's minimum distance, inherited exactly.

        A composite word with one active constituent is a base
        codeword in permuted positions (weight >= base dmin, attained),
        and every nonzero composite word contains a nonzero constituent
        of at least that weight.  Overridden because the generic
        incremental search is infeasible at k·depth > 16, and a deep
        composite's distance is needed cheaply (e.g. the service's
        session ``describe()``).
        """
        return self.base_code.minimum_distance


class ConcatenatedCode(LinearBlockCode):
    """Serial concatenation: outer codewords re-encoded by an inner code.

    A message is encoded by the outer code, the outer codeword is split
    into blocks of ``inner.k`` bits, and each block is encoded by the
    inner code — so ``n = (outer.n / inner.k) * inner.n`` and
    ``k = outer.k``.  Both steps are linear, hence the composite has an
    ordinary generator (``G_outer · (I ⊗ G_inner)``) and plugs into the
    batch kernels directly.  The minimum distance is at least
    ``outer.dmin``·``inner.dmin``-ish in the classical bound; for the
    short codes here the exact value is enumerated lazily as usual.

    Parameters
    ----------
    outer_code:
        The first (message-side) code.
    inner_code:
        The second (channel-side) code; ``inner_code.k`` must divide
        ``outer_code.n``.
    """

    def __init__(self, outer_code: LinearBlockCode, inner_code: LinearBlockCode):
        if outer_code.n % inner_code.k:
            raise DimensionError(
                f"inner k={inner_code.k} must divide outer n={outer_code.n} "
                "to concatenate"
            )
        blocks = outer_code.n // inner_code.k
        expand = np.kron(
            np.eye(blocks, dtype=np.uint8), inner_code.generator.to_array()
        )
        generator = (
            outer_code.generator.to_array().astype(np.uint32)
            @ expand.astype(np.uint32)
        ) % 2
        message_positions = None
        outer_positions = outer_code.message_positions
        inner_positions = inner_code.message_positions
        if outer_positions is not None and inner_positions is not None:
            message_positions = [
                (p // inner_code.k) * inner_code.n + inner_positions[p % inner_code.k]
                for p in outer_positions
            ]
        super().__init__(
            generator.astype(np.uint8),
            name=f"Concatenated({outer_code.name} ∘ {inner_code.name})",
            message_positions=message_positions,
        )
        self.outer_code = outer_code
        self.inner_code = inner_code
        self.blocks = blocks


class InterleavedDecoder(Decoder):
    """Decode an :class:`InterleavedCode` through its base decoder.

    Deinterleaves the received stream, reshapes the batch so every
    constituent word becomes a row, runs the base decoder's vectorised
    kernel once, and reassembles — composite decoding costs one base
    batch call regardless of depth.  Flags and correction counts
    aggregate per composite word (any flagged constituent flags the
    word; corrections sum).

    Parameters
    ----------
    code:
        The interleaved composite to decode.
    base_decoder:
        Decoder for the constituent code; defaults to the paper's
        pairing via
        :func:`~repro.coding.decoders.default_decoder_for`.
    """

    strategy_name = "interleaved"

    def __init__(
        self, code: InterleavedCode, base_decoder: Optional[Decoder] = None
    ):
        if not isinstance(code, InterleavedCode):
            raise TypeError(
                f"InterleavedDecoder requires an InterleavedCode, got {code!r}"
            )
        super().__init__(code)
        self.base_decoder = (
            base_decoder
            if base_decoder is not None
            else default_decoder_for(code.base_code)
        )
        if not (self.base_decoder.code.generator == code.base_code.generator):
            raise ValueError("base_decoder was built for a different base code")

    def _split(self, deinterleaved: np.ndarray) -> np.ndarray:
        """``(batch, depth·n)`` stream rows -> ``(batch·depth, n)`` words."""
        code: InterleavedCode = self.code  # type: ignore[assignment]
        batch = deinterleaved.shape[0]
        return deinterleaved.reshape(batch * code.depth, code.base_code.n)

    def _join(self, result: BatchDecodeResult, batch: int) -> BatchDecodeResult:
        """Reassemble constituent results into composite-word results."""
        code: InterleavedCode = self.code  # type: ignore[assignment]
        depth, n, k = code.depth, code.base_code.n, code.base_code.k
        codewords = code.interleaver.interleave(
            result.codewords.reshape(batch, depth * n)
        )
        return BatchDecodeResult(
            messages=np.ascontiguousarray(result.messages.reshape(batch, depth * k)),
            codewords=codewords,
            corrected_errors=result.corrected_errors.reshape(batch, depth).sum(axis=1),
            detected_uncorrectable=result.detected_uncorrectable.reshape(
                batch, depth
            ).any(axis=1),
        )

    def decode(self, received: Sequence[int]) -> DecodeResult:
        """Decode one composite word (delegates to the one-row batch)."""
        word = self._check_received(received)
        return self.decode_batch_detailed(word[None, :])[0]

    def decode_batch_detailed(self, received: np.ndarray) -> BatchDecodeResult:
        """Deinterleave, base-decode all constituents, reassemble."""
        words = self._check_received_batch(received)
        code: InterleavedCode = self.code  # type: ignore[assignment]
        split = self._split(code.interleaver.deinterleave(words))
        return self._join(self.base_decoder.decode_batch_detailed(split), len(words))

    def decode_soft_batch_detailed(self, confidences: np.ndarray) -> BatchDecodeResult:
        """Soft path: same deinterleave/reshape over float confidences."""
        values = self._check_soft_batch(confidences)
        code: InterleavedCode = self.code  # type: ignore[assignment]
        split = self._split(code.interleaver.deinterleave(values))
        return self._join(
            self.base_decoder.decode_soft_batch_detailed(split), len(values)
        )

    def decode_soft_batch(self, confidences: np.ndarray) -> np.ndarray:
        """Message-only soft fast path through the base soft kernel."""
        values = self._check_soft_batch(confidences)
        code: InterleavedCode = self.code  # type: ignore[assignment]
        split = self._split(code.interleaver.deinterleave(values))
        messages = self.base_decoder.decode_soft_batch(split)
        return np.ascontiguousarray(
            messages.reshape(len(values), code.depth * code.base_code.k)
        )


class ConcatenatedDecoder(Decoder):
    """Two-stage decoding of a :class:`ConcatenatedCode`.

    Inner blocks decode first (one vectorised inner call over the
    reshaped batch); their message estimates reassemble the outer
    received word, which the outer decoder then corrects.  The
    committed codeword is the full re-encoding of the outer message
    estimate, ``corrected_errors`` counts where it differs from the
    received word, and the flag is the outer decoder's (inner flags
    are absorbed when the outer stage corrects the block).

    Parameters
    ----------
    code:
        The concatenated composite to decode.
    outer_decoder, inner_decoder:
        Stage decoders; default to the paper's pairing for each
        constituent code.
    """

    strategy_name = "concatenated"

    def __init__(
        self,
        code: ConcatenatedCode,
        outer_decoder: Optional[Decoder] = None,
        inner_decoder: Optional[Decoder] = None,
    ):
        if not isinstance(code, ConcatenatedCode):
            raise TypeError(
                f"ConcatenatedDecoder requires a ConcatenatedCode, got {code!r}"
            )
        super().__init__(code)
        self.outer_decoder = (
            outer_decoder
            if outer_decoder is not None
            else default_decoder_for(code.outer_code)
        )
        self.inner_decoder = (
            inner_decoder
            if inner_decoder is not None
            else default_decoder_for(code.inner_code)
        )

    def decode(self, received: Sequence[int]) -> DecodeResult:
        """Decode one composite word (delegates to the one-row batch)."""
        word = self._check_received(received)
        return self.decode_batch_detailed(word[None, :])[0]

    def _finish(
        self, outer: BatchDecodeResult, words: np.ndarray, batch: int
    ) -> BatchDecodeResult:
        codewords = self.code.encode_batch(outer.messages)
        corrected = packed_hamming_distance(pack_rows(codewords), pack_rows(words))
        return BatchDecodeResult(
            messages=outer.messages,
            codewords=codewords,
            corrected_errors=corrected.astype(np.int64),
            detected_uncorrectable=outer.detected_uncorrectable.copy(),
        )

    def decode_batch_detailed(self, received: np.ndarray) -> BatchDecodeResult:
        """Inner-decode every block, then outer-decode the reassembly."""
        words = self._check_received_batch(received)
        code: ConcatenatedCode = self.code  # type: ignore[assignment]
        batch = len(words)
        inner_words = words.reshape(batch * code.blocks, code.inner_code.n)
        inner_messages = self.inner_decoder.decode_batch(inner_words)
        outer_received = inner_messages.reshape(batch, code.outer_code.n)
        outer = self.outer_decoder.decode_batch_detailed(outer_received)
        return self._finish(outer, words, batch)

    def _soft_outer_received(self, values: np.ndarray) -> np.ndarray:
        """Soft-decode every inner block; reassemble the outer word."""
        code: ConcatenatedCode = self.code  # type: ignore[assignment]
        inner_values = values.reshape(len(values) * code.blocks, code.inner_code.n)
        inner_messages = self.inner_decoder.decode_soft_batch(inner_values)
        return inner_messages.reshape(len(values), code.outer_code.n)

    def decode_soft_batch_detailed(self, confidences: np.ndarray) -> BatchDecodeResult:
        """Soft inner stage, hard outer stage over its message estimates."""
        values = self._check_soft_batch(confidences)
        outer = self.outer_decoder.decode_batch_detailed(
            self._soft_outer_received(values)
        )
        hard = (values < 0).astype(np.uint8)
        return self._finish(outer, hard, len(values))

    def decode_soft_batch(self, confidences: np.ndarray) -> np.ndarray:
        """Message-only soft fast path through the same two-stage pipeline.

        Overridden so both soft entry points run the identical inner-
        soft / outer-hard pipeline — the base class's generic
        correlation fallback would score the *composite* codebook and
        disagree with :meth:`decode_soft_batch_detailed`.
        """
        values = self._check_soft_batch(confidences)
        return self.outer_decoder.decode_batch(self._soft_outer_received(values))
