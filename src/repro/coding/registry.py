"""Name-based factory for the codes and decoders used in experiments.

The CLI and the experiment configs refer to coding schemes by the short
names used throughout the paper: ``hamming74``, ``hamming84``, ``rm13``
and ``none`` (the unencoded 4-bit baseline).

Composite codes compose registry codes by name:

* ``interleaved:<base>:<depth>`` — ``depth`` copies of ``<base>``
  block-interleaved into one word
  (:class:`~repro.coding.interleave.InterleavedCode`), e.g.
  ``interleaved:hamming74:8``;
* ``concatenated:<outer>:<inner>`` — serial concatenation
  (:class:`~repro.coding.interleave.ConcatenatedCode`), e.g.
  ``concatenated:hamming84:hamming74``.

Anywhere a code name is accepted — experiment configs, service session
configs, the CLI — a composite name works too.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.coding.decoders import (
    Decoder,
    ExtendedHammingDecoder,
    FhtDecoder,
    MaximumLikelihoodDecoder,
    ReedDecoder,
    SoftFhtDecoder,
    SyndromeDecoder,
    default_decoder_for,
)
from repro.coding.hamming import hamming74_paper, hamming84_paper
from repro.coding.interleave import (
    ConcatenatedCode,
    ConcatenatedDecoder,
    InterleavedCode,
    InterleavedDecoder,
)
from repro.coding.linear import LinearBlockCode
from repro.coding.reed_muller import rm13_paper

_CODE_FACTORIES: Dict[str, Callable[[], LinearBlockCode]] = {
    "hamming74": hamming74_paper,
    "hamming84": hamming84_paper,
    "rm13": rm13_paper,
}

#: Scheme names in the order the paper's Fig. 5 legend lists them.
PAPER_SCHEMES: List[str] = ["rm13", "hamming74", "hamming84", "none"]

#: Pretty names matching the paper's figures and tables.
DISPLAY_NAMES: Dict[str, str] = {
    "rm13": "RM(1,3)",
    "hamming74": "Hamming(7,4)",
    "hamming84": "Hamming(8,4)",
    "none": "No encoder",
}

_DECODER_FACTORIES: Dict[str, Callable[[LinearBlockCode], Decoder]] = {
    "syndrome": SyndromeDecoder,
    "sec-ded": ExtendedHammingDecoder,
    "fht": FhtDecoder,
    "soft-fht": SoftFhtDecoder,
    "reed-majority": ReedDecoder,
    "ml": MaximumLikelihoodDecoder,
    "interleaved": InterleavedDecoder,
    "concatenated": ConcatenatedDecoder,
}


def available_codes() -> List[str]:
    """Base code names accepted by :func:`get_code`.

    Composite spellings (``interleaved:<base>:<depth>``,
    ``concatenated:<outer>:<inner>``) are accepted on top of these.
    """
    return sorted(_CODE_FACTORIES)


#: Largest interleaving depth buildable *by name*.  Name-based
#: construction is the untrusted surface (service session configs come
#: from clients), and composite generator matrices grow superlinearly
#: with depth; direct InterleavedCode construction stays uncapped.
MAX_INTERLEAVE_DEPTH = 64


def _composite_code(name: str) -> LinearBlockCode:
    """Parse and build a composite code name (``kind:arg:arg``)."""
    parts = name.split(":")
    kind = parts[0].strip().lower()
    if kind == "interleaved":
        if len(parts) != 3:
            raise KeyError(
                f"interleaved code name must be 'interleaved:<base>:<depth>', "
                f"got {name!r}"
            )
        base = get_code(parts[1])
        try:
            depth = int(parts[2])
        except ValueError:
            raise KeyError(f"interleaving depth must be an integer, got {parts[2]!r}")
        if not 1 <= depth <= MAX_INTERLEAVE_DEPTH:
            raise KeyError(
                f"interleaving depth must lie in [1, {MAX_INTERLEAVE_DEPTH}], "
                f"got {depth}"
            )
        return InterleavedCode(base, depth)
    if kind == "concatenated":
        if len(parts) != 3:
            raise KeyError(
                f"concatenated code name must be 'concatenated:<outer>:<inner>', "
                f"got {name!r}"
            )
        return ConcatenatedCode(get_code(parts[1]), get_code(parts[2]))
    raise KeyError(
        f"unknown composite code kind {kind!r} in {name!r}; "
        "expected 'interleaved:<base>:<depth>' or 'concatenated:<outer>:<inner>'"
    )


def get_code(name: str) -> LinearBlockCode:
    """Build a code by short name (``hamming74``/``hamming84``/``rm13``).

    Composite names compose registry codes (see the module docstring):
    ``interleaved:<base>:<depth>`` builds an
    :class:`~repro.coding.interleave.InterleavedCode` and
    ``concatenated:<outer>:<inner>`` a
    :class:`~repro.coding.interleave.ConcatenatedCode`.
    """
    if ":" in name:
        return _composite_code(name)
    key = name.lower().replace("-", "").replace("_", "").replace("(", "").replace(")", "").replace(",", "")
    aliases = {
        "hamming74": "hamming74",
        "hamming84": "hamming84",
        "extendedhamming84": "hamming84",
        "rm13": "rm13",
        "reedmuller13": "rm13",
    }
    key = aliases.get(key, key)
    if key not in _CODE_FACTORIES:
        raise KeyError(f"unknown code {name!r}; available: {available_codes()}")
    return _CODE_FACTORIES[key]()


def available_decoders() -> List[str]:
    """Names accepted by :func:`get_decoder`."""
    return sorted(_DECODER_FACTORIES)


def get_decoder(
    code: LinearBlockCode,
    strategy: Optional[str] = None,
    backend: Optional[str] = None,
) -> Decoder:
    """Build a decoder for ``code``.

    ``strategy=None`` picks the paper's pairing via
    :func:`~repro.coding.decoders.default_decoder_for`.  ``backend``
    pins the decoder's batched kernels to a named compute backend
    (validated immediately — an unknown or unusable name raises the
    :mod:`repro.backends` errors here, not mid-decode); ``None`` keeps
    the ambient resolution.
    """
    if strategy is None:
        decoder = default_decoder_for(code)
    else:
        key = strategy.lower()
        if key not in _DECODER_FACTORIES:
            raise KeyError(
                f"unknown decoder {strategy!r}; available: {available_decoders()}"
            )
        decoder = _DECODER_FACTORIES[key](code)
    if backend is not None:
        from repro.backends import resolve_backend

        decoder.backend = resolve_backend(backend).name
    return decoder
