"""Name-based factory for the codes and decoders used in experiments.

The CLI and the experiment configs refer to coding schemes by the short
names used throughout the paper: ``hamming74``, ``hamming84``, ``rm13``
and ``none`` (the unencoded 4-bit baseline).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.coding.decoders import (
    Decoder,
    ExtendedHammingDecoder,
    FhtDecoder,
    MaximumLikelihoodDecoder,
    ReedDecoder,
    SoftFhtDecoder,
    SyndromeDecoder,
    default_decoder_for,
)
from repro.coding.hamming import hamming74_paper, hamming84_paper
from repro.coding.linear import LinearBlockCode
from repro.coding.reed_muller import rm13_paper

_CODE_FACTORIES: Dict[str, Callable[[], LinearBlockCode]] = {
    "hamming74": hamming74_paper,
    "hamming84": hamming84_paper,
    "rm13": rm13_paper,
}

#: Scheme names in the order the paper's Fig. 5 legend lists them.
PAPER_SCHEMES: List[str] = ["rm13", "hamming74", "hamming84", "none"]

#: Pretty names matching the paper's figures and tables.
DISPLAY_NAMES: Dict[str, str] = {
    "rm13": "RM(1,3)",
    "hamming74": "Hamming(7,4)",
    "hamming84": "Hamming(8,4)",
    "none": "No encoder",
}

_DECODER_FACTORIES: Dict[str, Callable[[LinearBlockCode], Decoder]] = {
    "syndrome": SyndromeDecoder,
    "sec-ded": ExtendedHammingDecoder,
    "fht": FhtDecoder,
    "soft-fht": SoftFhtDecoder,
    "reed-majority": ReedDecoder,
    "ml": MaximumLikelihoodDecoder,
}


def available_codes() -> List[str]:
    """Names accepted by :func:`get_code`."""
    return sorted(_CODE_FACTORIES)


def get_code(name: str) -> LinearBlockCode:
    """Build a paper code by short name (``hamming74``/``hamming84``/``rm13``)."""
    key = name.lower().replace("-", "").replace("_", "").replace("(", "").replace(")", "").replace(",", "")
    aliases = {
        "hamming74": "hamming74",
        "hamming84": "hamming84",
        "extendedhamming84": "hamming84",
        "rm13": "rm13",
        "reedmuller13": "rm13",
    }
    key = aliases.get(key, key)
    if key not in _CODE_FACTORIES:
        raise KeyError(f"unknown code {name!r}; available: {available_codes()}")
    return _CODE_FACTORIES[key]()


def available_decoders() -> List[str]:
    """Names accepted by :func:`get_decoder`."""
    return sorted(_DECODER_FACTORIES)


def get_decoder(code: LinearBlockCode, strategy: Optional[str] = None) -> Decoder:
    """Build a decoder for ``code``.

    ``strategy=None`` picks the paper's pairing via
    :func:`~repro.coding.decoders.default_decoder_for`.
    """
    if strategy is None:
        return default_decoder_for(code)
    key = strategy.lower()
    if key not in _DECODER_FACTORIES:
        raise KeyError(
            f"unknown decoder {strategy!r}; available: {available_decoders()}"
        )
    return _DECODER_FACTORIES[key](code)
