"""Soft-decision FHT decoding of RM(1, m).

The paper's Ref. [34] (Be'ery & Snyders) shows first-order Reed-Muller
codes admit optimal *soft* maximum-likelihood decoding through the fast
Hadamard transform: feed per-bit confidences (LLR-like reals, positive
= looks like 0) into the WHT and pick the largest-magnitude
coefficient.  Against the waveform layer this means decoding straight
from per-window flux values instead of first slicing to bits — worth
several dB at the noise levels where the hard slicer starts failing
(demonstrated in ``tests/test_soft_decoding.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.coding.decoders.base import DecodeResult, Decoder
from repro.coding.decoders.fht import (
    _check_rm1m,
    hadamard_matrix,
    walsh_hadamard_transform,
)
from repro.coding.linear import LinearBlockCode


class SoftFhtDecoder(Decoder):
    """Soft-input ML decoder for RM(1, m) via the Hadamard spectrum.

    Input confidences follow the BPSK convention: value > 0 means "bit
    looks like 0", value < 0 means "bit looks like 1", magnitude is the
    reliability.  ``decode`` accepts hard bits for interface
    compatibility (they are mapped to ±1); ``decode_soft`` is the real
    entry point.
    """

    strategy_name = "soft-fht"

    def __init__(self, code: LinearBlockCode):
        super().__init__(code)
        self.m = _check_rm1m(code, "SoftFhtDecoder")

    def decode_soft(self, confidences: Sequence[float]) -> DecodeResult:
        """Decode one n-vector of real confidences."""
        values = np.asarray(confidences, dtype=float)
        if values.shape != (self.code.n,):
            raise ValueError(
                f"expected {self.code.n} confidences, got shape {values.shape}"
            )
        spectrum = self._wht_real(values)
        magnitudes = np.abs(spectrum)
        best = float(magnitudes.max())
        candidates = np.nonzero(magnitudes == best)[0]
        index = int(candidates[0])
        tie = len(candidates) > 1 or best == 0.0
        m1 = 0 if spectrum[index] >= 0 else 1
        coefficients = [(index >> j) & 1 for j in range(self.m)]
        message = np.array([m1] + coefficients, dtype=np.uint8)
        codeword = self.code.encode(message)
        hard = (values < 0).astype(np.uint8)
        return DecodeResult(
            message=message,
            codeword=codeword,
            corrected_errors=int(np.count_nonzero(codeword ^ hard)),
            detected_uncorrectable=tie,
        )

    @staticmethod
    def _wht_real(values: np.ndarray) -> np.ndarray:
        t = values.astype(float).copy()
        n = t.size
        h = 1
        while h < n:
            for start in range(0, n, 2 * h):
                a = t[start : start + h].copy()
                b = t[start + h : start + 2 * h].copy()
                t[start : start + h] = a + b
                t[start + h : start + 2 * h] = a - b
            h *= 2
        return t

    def decode(self, received: Sequence[int]) -> DecodeResult:
        word = self._check_received(received)
        return self.decode_soft(1.0 - 2.0 * word.astype(float))

    def decode_soft_batch(self, confidences: np.ndarray) -> np.ndarray:
        """Vectorised soft decoding of a ``(batch, n)`` confidence array."""
        values = np.asarray(confidences, dtype=float)
        if values.ndim != 2 or values.shape[1] != self.code.n:
            raise ValueError(f"expected (batch, {self.code.n}), got {values.shape}")
        spectra = values @ hadamard_matrix(self.code.n).T
        best_index = np.abs(spectra).argmax(axis=1)
        best_value = spectra[np.arange(len(values)), best_index]
        out = np.empty((len(values), self.code.k), dtype=np.uint8)
        out[:, 0] = (best_value < 0).astype(np.uint8)
        for j in range(self.m):
            out[:, j + 1] = (best_index >> j) & 1
        return out


def soft_confidences_from_flux(
    flux_uv_ps: np.ndarray, amplitude_scale: float = 1.0
) -> np.ndarray:
    """Map per-window flux integrals to BPSK-style confidences.

    A window carrying a pulse integrates to ~Phi_0 * scale; an empty
    one to ~0.  Centre and normalise so 0 flux -> +1 (confident zero)
    and full flux -> -1 (confident one).
    """
    from repro.sfq.waveform import PHI0_MV_PS

    full = PHI0_MV_PS * 1000.0 * amplitude_scale
    return 1.0 - 2.0 * np.asarray(flux_uv_ps, dtype=float) / full
