"""Soft-decision FHT decoding of RM(1, m).

The paper's Ref. [34] (Be'ery & Snyders) shows first-order Reed-Muller
codes admit optimal *soft* maximum-likelihood decoding through the fast
Hadamard transform: feed per-bit confidences (LLR-like reals, positive
= looks like 0) into the WHT and pick the largest-magnitude
coefficient.  Against the waveform layer this means decoding straight
from per-window flux values instead of first slicing to bits — worth
several dB at the noise levels where the hard slicer starts failing
(demonstrated in ``tests/test_soft_decoding.py``).

The batched kernels (``decode_soft_batch`` /
``decode_soft_batch_detailed``) share the dense Hadamard product with
the hard :class:`~repro.coding.decoders.fht.FhtDecoder`; the scalar
``decode_soft`` delegates to the one-row batch so both paths are
bit-identical by construction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.coding.decoders.base import DecodeResult
from repro.coding.decoders.fht import FhtDecoder


class SoftFhtDecoder(FhtDecoder):
    """Soft-input ML decoder for RM(1, m) via the Hadamard spectrum.

    Input confidences follow the BPSK convention: value > 0 means "bit
    looks like 0", value < 0 means "bit looks like 1", magnitude is the
    reliability.  All batched kernels (hard and soft) are inherited
    from :class:`~repro.coding.decoders.fht.FhtDecoder` — the two
    strategies share one spectrum implementation and differ only in
    what ``decode`` accepts: here hard bits are a *degenerate soft
    input* (mapped to ±1 and decoded through the soft path), so
    ``decode_soft`` is the real entry point.
    """

    strategy_name = "soft-fht"

    def decode(self, received: Sequence[int]) -> DecodeResult:
        """Decode hard bits as degenerate ±1 confidences.

        Maps 0/1 to +1/−1 and runs the soft spectrum path, so hard
        input through this strategy matches the hard FHT decoder's
        commitments on the same word.
        """
        word = self._check_received(received)
        return self.decode_soft(1.0 - 2.0 * word.astype(np.float64))


def full_flux_amplitude_uv_ps(amplitude_scale: float = 1.0) -> float:
    """The flux integral of a clean transmitted 1, in µV·ps.

    One shared constant for every flux-domain channel
    (:class:`repro.link.awgn.AwgnFluxChannel`,
    :class:`repro.link.burst.BurstyFluxChannel` and their scalar
    references): a pulse window integrates to Phi_0 times the PPV
    amplitude scale.  Sharing it keeps the channels' normalisations in
    lock-step, which the hard-slice pairing across channels relies on.
    """
    from repro.sfq.waveform import PHI0_MV_PS

    return PHI0_MV_PS * 1000.0 * amplitude_scale


def soft_confidences_from_flux(
    flux_uv_ps: np.ndarray, amplitude_scale: float = 1.0
) -> np.ndarray:
    """Map per-window flux integrals to BPSK-style confidences.

    A window carrying a pulse integrates to ~Phi_0 * scale; an empty
    one to ~0.  Centre and normalise so 0 flux -> +1 (confident zero)
    and full flux -> -1 (confident one).  This is the scalar reference
    of :class:`repro.link.awgn.AwgnFluxChannel`.
    """
    full = full_flux_amplitude_uv_ps(amplitude_scale)
    return 1.0 - 2.0 * np.asarray(flux_uv_ps, dtype=float) / full
