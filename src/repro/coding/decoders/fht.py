"""Fast-Hadamard-transform (Green machine) decoding of RM(1, m).

Hard-decision maximum-likelihood decoding of first-order Reed-Muller
codes via the Walsh-Hadamard spectrum (the paper's Ref. [34] technique
applied to hard decisions):

1. map received bits to signs ``s_i = (-1)^{r_i}``;
2. compute the length-2^m Walsh-Hadamard transform T of s in
   O(n log n);
3. the transmitted codeword corresponds to the coefficient of largest
   magnitude: index a gives the linear coefficients (m2..m_{m+1}),
   the sign gives the constant term m1.

Weight-1 errors leave a unique dominant coefficient, so single-error
correction is guaranteed.  Weight-2 errors can tie several coefficients
at the same magnitude; the deterministic tie-break below (smallest
(a, sign) pair, preferring positive sign) still lands on the transmitted
codeword for a fraction of those patterns — this is precisely the
"ability to correct certain 2-bit error patterns" that Table I credits
to RM(1,3) (best case: 2 errors corrected).  Ties also raise the
``detected_uncorrectable`` flag so the link layer knows the choice was
ambiguous.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.backends import resolve_backend
from repro.coding.decoders.base import BatchDecodeResult, DecodeResult, Decoder
from repro.coding.linear import LinearBlockCode
from repro.gf2.bitpack import pack_rows, packed_hamming_distance


def walsh_hadamard_transform(signs: np.ndarray) -> np.ndarray:
    """In-place-style iterative WHT; returns a new int array.

    ``T[a] = sum_i (-1)^{<a, i>} signs[i]`` with ``<a, i>`` the GF(2)
    inner product of the bit expansions.
    """
    t = signs.astype(np.int64).copy()
    n = t.size
    if n & (n - 1):
        raise ValueError(f"WHT length must be a power of two, got {n}")
    h = 1
    while h < n:
        for start in range(0, n, 2 * h):
            a = t[start : start + h].copy()
            b = t[start + h : start + 2 * h].copy()
            t[start : start + h] = a + b
            t[start + h : start + 2 * h] = a - b
        h *= 2
    return t


@lru_cache(maxsize=None)
def hadamard_matrix(n: int) -> np.ndarray:
    """The n x n ±1 Hadamard matrix ``H[a, i] = (-1)^{<a, i>}``.

    Cached per size; both the hard and soft batched FHT decoders apply
    it as one dense product (n is tiny for RM(1, m), so that beats the
    butterfly across a batch).
    """
    indices = np.arange(n)
    parity = np.array(
        [[bin(a & i).count("1") & 1 for i in indices] for a in range(n)],
        dtype=np.int64,
    )
    hadamard = 1 - 2 * parity
    hadamard.flags.writeable = False
    return hadamard


def soft_spectrum_messages(
    values: np.ndarray, m: int, backend: Optional[str] = None
):
    """Batched soft Hadamard decoding: ``(messages, ties)`` for RM(1, m).

    ``values`` is a ``(batch, 2^m)`` float array of BPSK confidences.
    The whole batch is pushed through one dense Hadamard product; the
    largest-magnitude spectrum coefficient per row gives the message,
    its sign the constant term.  Ties in magnitude (or an all-zero
    spectrum) are reported per row, matching the scalar tie-break:
    smallest spectrum index wins, positive sign preferred.

    The spectrum kernel (:meth:`soft_spectrum_decode
    <repro.backends.base.KernelBackend.soft_spectrum_decode>`) is an
    elementwise multiply + axis sum rather than a BLAS matmul so the
    floating-point reduction order is identical for every batch size —
    a 1-row call and a 4096-row call are bit-identical per row
    (``bench_soft.py`` asserts exactly that), and every backend must
    reproduce that order.
    """
    batch, n = values.shape
    hadamard = hadamard_matrix(n).astype(np.float64)
    best_index, best_value, ties = resolve_backend(backend).soft_spectrum_decode(
        np.ascontiguousarray(values), hadamard
    )
    messages = np.empty((batch, m + 1), dtype=np.uint8)
    messages[:, 0] = (best_value < 0).astype(np.uint8)
    for j in range(m):
        messages[:, j + 1] = (best_index >> j) & 1
    return messages, ties


def soft_spectrum_detailed(
    code: LinearBlockCode,
    values: np.ndarray,
    m: int,
    backend: Optional[str] = None,
) -> BatchDecodeResult:
    """Full :class:`BatchDecodeResult` for a validated confidence batch.

    Shared by :class:`FhtDecoder` and
    :class:`~repro.coding.decoders.soft.SoftFhtDecoder`:
    ``corrected_errors`` counts where the committed codeword differs
    from the sign-sliced input, aligning soft telemetry with the hard
    path's.
    """
    messages, ties = soft_spectrum_messages(values, m, backend=backend)
    codewords = code.encode_batch(messages)
    hard = (values < 0).astype(np.uint8)
    corrected = packed_hamming_distance(
        pack_rows(codewords, backend=backend),
        pack_rows(hard, backend=backend),
        backend=backend,
    )
    return BatchDecodeResult(
        messages=messages,
        codewords=codewords,
        corrected_errors=corrected.astype(np.int64),
        detected_uncorrectable=ties,
    )


def _check_rm1m(code: LinearBlockCode, who: str) -> int:
    """Validate that ``code`` uses the RM(1, m) generator convention.

    Spectrum-indexed decoding assumes message bit 1 is the constant term
    and bit j+1 the coefficient of x_j, i.e. the exact generator of
    :func:`repro.coding.reed_muller.rm_generator` — a same-shape code
    with a different generator (e.g. extended Hamming(8,4)) would decode
    to the wrong message mapping.
    """
    n = code.n
    m = n.bit_length() - 1
    if (1 << m) != n or code.k != m + 1:
        raise ValueError(
            f"{who} expects an RM(1,m) code (n=2^m, k=m+1); got {code.name}"
        )
    from repro.coding.reed_muller import rm_generator

    if not (code.generator == rm_generator(1, m)):
        raise ValueError(
            f"{who} needs the canonical RM(1,{m}) generator; "
            f"{code.name} uses a different message mapping"
        )
    return m


class FhtDecoder(Decoder):
    """Green-machine ML decoder for RM(1, m) with deterministic tie-break."""

    strategy_name = "fht"

    def __init__(self, code: LinearBlockCode):
        super().__init__(code)
        self.m = _check_rm1m(code, type(self).__name__)

    def _spectrum_argmax(self, spectrum: np.ndarray) -> Tuple[int, int, bool]:
        """Return (index, sign, tie) of the max-|T| coefficient.

        Tie-break: smallest index wins; at the winning index a positive
        sign wins over negative (constant term 0 preferred).  ``tie`` is
        True when more than one (index, sign) candidate attains the
        maximum magnitude.
        """
        magnitudes = np.abs(spectrum)
        best = int(magnitudes.max())
        candidates = np.nonzero(magnitudes == best)[0]
        index = int(candidates[0])
        sign = 1 if spectrum[index] >= 0 else -1
        tie = len(candidates) > 1 or (best == 0)
        return index, sign, tie

    def decode(self, received: Sequence[int]) -> DecodeResult:
        """Green-machine ML decode of one hard word via the WHT.

        Maps bits to ±1 signs, takes the Walsh–Hadamard spectrum, and
        commits to the largest-magnitude coefficient (its index and
        sign encode the message).  Spectrum ties raise
        ``detected_uncorrectable`` with a deterministic
        smallest-index tie-break.
        """
        word = self._check_received(received)
        signs = 1 - 2 * word.astype(np.int64)
        spectrum = walsh_hadamard_transform(signs)
        index, sign, tie = self._spectrum_argmax(spectrum)
        m1 = 0 if sign > 0 else 1
        coefficients = [(index >> j) & 1 for j in range(self.m)]
        message = np.array([m1] + coefficients, dtype=np.uint8)
        codeword = self.code.encode(message)
        corrected = int(np.count_nonzero(codeword ^ word))
        return DecodeResult(
            message=message,
            codeword=codeword,
            corrected_errors=corrected,
            detected_uncorrectable=tie,
        )

    def _batch_messages(self, words: np.ndarray):
        """Batched WHT argmax: ``(messages, ties)`` for validated words."""
        batch = words.shape[0]
        signs = 1 - 2 * words.astype(np.int64)
        spectra = signs @ hadamard_matrix(self.code.n).T
        magnitudes = np.abs(spectra)
        best = magnitudes.max(axis=1, initial=0)
        best_index = magnitudes.argmax(axis=1) if batch else np.zeros(0, dtype=np.int64)
        best_value = spectra[np.arange(batch), best_index]
        ties = ((magnitudes == best[:, None]).sum(axis=1) > 1) | (best == 0)
        messages = np.empty((batch, self.code.k), dtype=np.uint8)
        messages[:, 0] = (best_value < 0).astype(np.uint8)
        for j in range(self.m):
            messages[:, j + 1] = (best_index >> j) & 1
        return messages, ties

    def decode_batch(self, received: np.ndarray) -> np.ndarray:
        """Message-only batch decode, skipping the re-encode.

        The Monte-Carlo hot loops only consume message estimates, so
        this skips the codeword/corrected-error bookkeeping that
        :meth:`decode_batch_detailed` adds.
        """
        return self._batch_messages(self._check_received_batch(received))[0]

    def decode_batch_detailed(self, received: np.ndarray) -> BatchDecodeResult:
        """Vectorised Green-machine decoding of a whole batch.

        Parameters
        ----------
        received : numpy.ndarray
            ``(batch, n)`` array of 0/1 received bits.

        Returns
        -------
        BatchDecodeResult
            Bit-identical to scalar :meth:`decode` per row.  The batch
            WHT is one dense sign-matrix product (n is tiny for
            RM(1,3), so that beats the butterfly); ties in the spectrum
            magnitude raise ``detected_uncorrectable`` exactly as the
            scalar tie-break does.
        """
        words = self._check_received_batch(received)
        messages, ties = self._batch_messages(words)
        codewords = self.code.encode_batch(messages)
        corrected = packed_hamming_distance(pack_rows(codewords), pack_rows(words))
        return BatchDecodeResult(
            messages=messages,
            codewords=codewords,
            corrected_errors=corrected,
            detected_uncorrectable=ties,
        )

    def decode_soft_batch(self, confidences: np.ndarray) -> np.ndarray:
        """Message-only batched soft decoding via the Hadamard spectrum.

        The RM(1, m) spectrum *is* the correlation with every codeword,
        so this replaces the base class's generic 2^k-codeword
        correlation with one dense n x n product — the soft peer of the
        hard :meth:`decode_batch` fast path.
        """
        values = self._check_soft_batch(confidences)
        return soft_spectrum_messages(values, self.m, backend=self.backend)[0]

    def decode_soft_batch_detailed(self, confidences: np.ndarray) -> BatchDecodeResult:
        """Batched soft decoding keeping codewords, counts and tie flags."""
        return soft_spectrum_detailed(
            self.code, self._check_soft_batch(confidences), self.m,
            backend=self.backend,
        )
