"""Fast-Hadamard-transform (Green machine) decoding of RM(1, m).

Hard-decision maximum-likelihood decoding of first-order Reed-Muller
codes via the Walsh-Hadamard spectrum (the paper's Ref. [34] technique
applied to hard decisions):

1. map received bits to signs ``s_i = (-1)^{r_i}``;
2. compute the length-2^m Walsh-Hadamard transform T of s in
   O(n log n);
3. the transmitted codeword corresponds to the coefficient of largest
   magnitude: index a gives the linear coefficients (m2..m_{m+1}),
   the sign gives the constant term m1.

Weight-1 errors leave a unique dominant coefficient, so single-error
correction is guaranteed.  Weight-2 errors can tie several coefficients
at the same magnitude; the deterministic tie-break below (smallest
(a, sign) pair, preferring positive sign) still lands on the transmitted
codeword for a fraction of those patterns — this is precisely the
"ability to correct certain 2-bit error patterns" that Table I credits
to RM(1,3) (best case: 2 errors corrected).  Ties also raise the
``detected_uncorrectable`` flag so the link layer knows the choice was
ambiguous.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.coding.decoders.base import DecodeResult, Decoder
from repro.coding.linear import LinearBlockCode


def walsh_hadamard_transform(signs: np.ndarray) -> np.ndarray:
    """In-place-style iterative WHT; returns a new int array.

    ``T[a] = sum_i (-1)^{<a, i>} signs[i]`` with ``<a, i>`` the GF(2)
    inner product of the bit expansions.
    """
    t = signs.astype(np.int64).copy()
    n = t.size
    if n & (n - 1):
        raise ValueError(f"WHT length must be a power of two, got {n}")
    h = 1
    while h < n:
        for start in range(0, n, 2 * h):
            a = t[start : start + h].copy()
            b = t[start + h : start + 2 * h].copy()
            t[start : start + h] = a + b
            t[start + h : start + 2 * h] = a - b
        h *= 2
    return t


def _check_rm1m(code: LinearBlockCode, who: str) -> int:
    """Validate that ``code`` uses the RM(1, m) generator convention.

    Spectrum-indexed decoding assumes message bit 1 is the constant term
    and bit j+1 the coefficient of x_j, i.e. the exact generator of
    :func:`repro.coding.reed_muller.rm_generator` — a same-shape code
    with a different generator (e.g. extended Hamming(8,4)) would decode
    to the wrong message mapping.
    """
    n = code.n
    m = n.bit_length() - 1
    if (1 << m) != n or code.k != m + 1:
        raise ValueError(
            f"{who} expects an RM(1,m) code (n=2^m, k=m+1); got {code.name}"
        )
    from repro.coding.reed_muller import rm_generator

    if not (code.generator == rm_generator(1, m)):
        raise ValueError(
            f"{who} needs the canonical RM(1,{m}) generator; "
            f"{code.name} uses a different message mapping"
        )
    return m


class FhtDecoder(Decoder):
    """Green-machine ML decoder for RM(1, m) with deterministic tie-break."""

    strategy_name = "fht"

    def __init__(self, code: LinearBlockCode):
        super().__init__(code)
        self.m = _check_rm1m(code, "FhtDecoder")

    def _spectrum_argmax(self, spectrum: np.ndarray) -> Tuple[int, int, bool]:
        """Return (index, sign, tie) of the max-|T| coefficient.

        Tie-break: smallest index wins; at the winning index a positive
        sign wins over negative (constant term 0 preferred).  ``tie`` is
        True when more than one (index, sign) candidate attains the
        maximum magnitude.
        """
        magnitudes = np.abs(spectrum)
        best = int(magnitudes.max())
        candidates = np.nonzero(magnitudes == best)[0]
        index = int(candidates[0])
        sign = 1 if spectrum[index] >= 0 else -1
        tie = len(candidates) > 1 or (best == 0)
        return index, sign, tie

    def decode(self, received: Sequence[int]) -> DecodeResult:
        word = self._check_received(received)
        signs = 1 - 2 * word.astype(np.int64)
        spectrum = walsh_hadamard_transform(signs)
        index, sign, tie = self._spectrum_argmax(spectrum)
        m1 = 0 if sign > 0 else 1
        coefficients = [(index >> j) & 1 for j in range(self.m)]
        message = np.array([m1] + coefficients, dtype=np.uint8)
        codeword = self.code.encode(message)
        corrected = int(np.count_nonzero(codeword ^ word))
        return DecodeResult(
            message=message,
            codeword=codeword,
            corrected_errors=corrected,
            detected_uncorrectable=tie,
        )

    def decode_batch(self, received: np.ndarray) -> np.ndarray:
        words = np.asarray(received, dtype=np.uint8)
        if words.ndim != 2 or words.shape[1] != self.code.n:
            raise ValueError(f"expected (batch, {self.code.n}) words, got {words.shape}")
        # Vectorised WHT across the batch via the Hadamard matrix (n is
        # tiny for RM(1,3), so the dense product is fastest).
        n = self.code.n
        indices = np.arange(n)
        parity = np.zeros((n, n), dtype=np.int64)
        for a in range(n):
            parity[a] = np.array([bin(a & i).count("1") & 1 for i in indices])
        hadamard = 1 - 2 * parity
        signs = 1 - 2 * words.astype(np.int64)
        spectra = signs @ hadamard.T
        magnitudes = np.abs(spectra)
        best_index = magnitudes.argmax(axis=1)
        best_value = spectra[np.arange(len(words)), best_index]
        m1 = (best_value < 0).astype(np.uint8)
        out = np.empty((len(words), self.code.k), dtype=np.uint8)
        out[:, 0] = m1
        for j in range(self.m):
            out[:, j + 1] = (best_index >> j) & 1
        return out
