"""Decoder interface and result record."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.coding.linear import LinearBlockCode
from repro.errors import DimensionError
from repro.gf2.vectors import as_bit_array


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one received word.

    Attributes
    ----------
    message:
        The decoder's best estimate of the k message bits.  Always
        populated — when the pattern is detected-uncorrectable the
        decoder applies its fallback policy (see each decoder's docs)
        rather than returning nothing, because the paper's Fig. 5 counts
        *erroneous messages*, which requires a message estimate.
    codeword:
        The codeword estimate aligned with ``message`` (``None`` when the
        decoder only re-extracted message bits without committing to a
        codeword).
    corrected_errors:
        Number of bit corrections the decoder applied.
    detected_uncorrectable:
        True when the decoder knows the word is in error but could not
        correct it — the paper's "error flag" output in Fig. 1.
    """

    message: np.ndarray
    codeword: Optional[np.ndarray]
    corrected_errors: int
    detected_uncorrectable: bool

    @property
    def error_flag(self) -> bool:
        """Fig. 1 'error flags' line: any detected anomaly."""
        return self.detected_uncorrectable or self.corrected_errors > 0


class Decoder(ABC):
    """Base class for hard-decision decoders of a specific code."""

    #: Short identifier used in reports and the decoder-policy ablation.
    strategy_name: str = "abstract"

    def __init__(self, code: LinearBlockCode):
        self.code = code

    @abstractmethod
    def decode(self, received: Sequence[int]) -> DecodeResult:
        """Decode one received n-bit word."""

    def decode_batch(self, received: np.ndarray) -> np.ndarray:
        """Decode a ``(batch, n)`` array; returns ``(batch, k)`` messages.

        Subclasses override this when a vectorised path exists; the
        default loops over :meth:`decode`.
        """
        words = np.asarray(received, dtype=np.uint8)
        if words.ndim != 2 or words.shape[1] != self.code.n:
            raise DimensionError(
                f"expected (batch, {self.code.n}) received words, got {words.shape}"
            )
        out = np.empty((words.shape[0], self.code.k), dtype=np.uint8)
        for i, word in enumerate(words):
            out[i] = self.decode(word).message
        return out

    def _check_received(self, received: Sequence[int]) -> np.ndarray:
        return as_bit_array(received, length=self.code.n)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} for {self.code.name}>"
