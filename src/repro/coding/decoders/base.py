"""Decoder interface and result record."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.backends import resolve_backend
from repro.coding.linear import LinearBlockCode
from repro.errors import DimensionError
from repro.gf2.bitpack import pack_rows, packed_hamming_distance
from repro.gf2.vectors import as_bit_array


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one received word.

    Attributes
    ----------
    message:
        The decoder's best estimate of the k message bits.  Always
        populated — when the pattern is detected-uncorrectable the
        decoder applies its fallback policy (see each decoder's docs)
        rather than returning nothing, because the paper's Fig. 5 counts
        *erroneous messages*, which requires a message estimate.
    codeword:
        The codeword estimate aligned with ``message`` (``None`` when the
        decoder only re-extracted message bits without committing to a
        codeword).
    corrected_errors:
        Number of bit corrections the decoder applied.
    detected_uncorrectable:
        True when the decoder knows the word is in error but could not
        correct it — the paper's "error flag" output in Fig. 1.
    """

    message: np.ndarray
    codeword: Optional[np.ndarray]
    corrected_errors: int
    detected_uncorrectable: bool

    @property
    def error_flag(self) -> bool:
        """Fig. 1 'error flags' line: any detected anomaly."""
        return self.detected_uncorrectable or self.corrected_errors > 0


@dataclass(frozen=True)
class BatchDecodeResult:
    """Vectorised outcome of decoding a whole batch of received words.

    The batched counterpart of :class:`DecodeResult`: one array per
    field, aligned row-for-row with the input batch and bit-identical to
    running the scalar decoder word by word.

    Attributes
    ----------
    messages : numpy.ndarray
        ``(batch, k)`` message estimates (always populated — flagged
        rows hold the decoder's fallback estimate, matching the scalar
        policy).
    codewords : numpy.ndarray
        ``(batch, n)`` codeword estimates.  Rows whose scalar decode
        would return ``codeword=None`` (detected-uncorrectable with no
        commitment) hold the *received* word unchanged; check
        :attr:`detected_uncorrectable` before trusting a row.
    corrected_errors : numpy.ndarray
        ``(batch,)`` number of bit corrections applied per word.
    detected_uncorrectable : numpy.ndarray
        ``(batch,)`` boolean error flags (the paper's Fig. 1 "error
        flags" line, vectorised).
    """

    messages: np.ndarray
    codewords: np.ndarray
    corrected_errors: np.ndarray
    detected_uncorrectable: np.ndarray

    def __len__(self) -> int:
        return len(self.messages)

    @property
    def error_flags(self) -> np.ndarray:
        """Per-word Fig. 1 'error flags': any detected anomaly."""
        return self.detected_uncorrectable | (self.corrected_errors > 0)

    def __getitem__(self, index: int) -> DecodeResult:
        """Scalar view of row ``index`` as a :class:`DecodeResult`."""
        return DecodeResult(
            message=self.messages[index].copy(),
            codeword=self.codewords[index].copy(),
            corrected_errors=int(self.corrected_errors[index]),
            detected_uncorrectable=bool(self.detected_uncorrectable[index]),
        )


#: Largest code dimension the exhaustive correlation soft decoder will
#: enumerate (2^k codeword scores per word; the paper's codes have k=4).
SOFT_CODEBOOK_K_LIMIT = 16


class Decoder(ABC):
    """Base class for decoders of a specific code.

    Every decoder exposes two input domains:

    * **hard** — 0/1 received words (:meth:`decode`,
      :meth:`decode_batch`, :meth:`decode_batch_detailed`);
    * **soft** — real per-bit confidences in the BPSK convention
      (positive = "looks like 0", magnitude = reliability;
      :meth:`decode_soft`, :meth:`decode_soft_batch`,
      :meth:`decode_soft_batch_detailed`).

    The base soft implementation is exhaustive correlation decoding —
    score every codeword against the confidence vector and pick the
    maximum, which *is* maximum-likelihood on an AWGN-style channel —
    so every short code in the registry gets a working soft path for
    free.  Structured codes override it with a faster kernel (RM(1, m)
    uses the Hadamard spectrum, see
    :class:`~repro.coding.decoders.fht.FhtDecoder`).
    """

    #: Short identifier used in reports and the decoder-policy ablation.
    strategy_name: str = "abstract"

    #: Kernel backend this decoder's batched paths dispatch to.  ``None``
    #: (the default) resolves the ambient backend at each call; set a
    #: name (``get_decoder(..., backend="native")``) to pin one.
    backend: Optional[str] = None

    def __init__(self, code: LinearBlockCode):
        self.code = code
        self._codebook_signs: Optional[np.ndarray] = None

    @abstractmethod
    def decode(self, received: Sequence[int]) -> DecodeResult:
        """Decode one received n-bit word."""

    def decode_batch(self, received: np.ndarray) -> np.ndarray:
        """Decode a batch of received words into message estimates.

        Parameters
        ----------
        received : numpy.ndarray
            ``(batch, n)`` array of 0/1 received bits.

        Returns
        -------
        numpy.ndarray
            ``(batch, k)`` ``uint8`` message estimates, row ``i``
            decoding ``received[i]``.  Use :meth:`decode_batch_detailed`
            when the error flags or correction counts are also needed.
        """
        return self.decode_batch_detailed(received).messages

    def decode_batch_detailed(self, received: np.ndarray) -> BatchDecodeResult:
        """Decode a batch keeping per-word flags and correction counts.

        Subclasses override this with a fully vectorised path; the base
        implementation loops over :meth:`decode` and is the reference
        the vectorised paths are tested against.

        Parameters
        ----------
        received : numpy.ndarray
            ``(batch, n)`` array of 0/1 received bits.

        Returns
        -------
        BatchDecodeResult
            Per-word messages, codeword estimates, correction counts and
            detected-uncorrectable flags, bit-identical to scalar
            :meth:`decode` calls.
        """
        words = self._check_received_batch(received)
        batch = words.shape[0]
        messages = np.empty((batch, self.code.k), dtype=np.uint8)
        codewords = np.empty((batch, self.code.n), dtype=np.uint8)
        corrected = np.zeros(batch, dtype=np.int64)
        flagged = np.zeros(batch, dtype=bool)
        for i, word in enumerate(words):
            result = self.decode(word)
            messages[i] = result.message
            codewords[i] = word if result.codeword is None else result.codeword
            corrected[i] = result.corrected_errors
            flagged[i] = result.detected_uncorrectable
        return BatchDecodeResult(
            messages=messages,
            codewords=codewords,
            corrected_errors=corrected,
            detected_uncorrectable=flagged,
        )

    # ------------------------------------------------------------------
    # Soft-decision interface
    # ------------------------------------------------------------------
    def decode_soft(self, confidences: Sequence[float]) -> DecodeResult:
        """Decode one n-vector of real confidences (BPSK convention).

        Delegates to :meth:`decode_soft_batch_detailed` on a one-row
        batch, so scalar and batched soft decoding are identical by
        construction (same kernel, same tie-break).
        """
        values = np.asarray(confidences, dtype=np.float64)
        if values.shape != (self.code.n,):
            raise ValueError(
                f"expected {self.code.n} confidences, got shape {values.shape}"
            )
        return self.decode_soft_batch_detailed(values[None, :])[0]

    def decode_soft_batch(self, confidences: np.ndarray) -> np.ndarray:
        """Soft-decode a ``(batch, n)`` confidence array into messages.

        Message-only fast path for hot loops (the soft-gain Monte-Carlo
        sweep): skips the codeword re-encode and correction-count
        bookkeeping that :meth:`decode_soft_batch_detailed` adds,
        mirroring the hard :meth:`decode_batch` / detailed split.

        Parameters
        ----------
        confidences : numpy.ndarray
            ``(batch, n)`` real confidences; positive means "looks like
            0", magnitude is the reliability (LLR-like).

        Returns
        -------
        numpy.ndarray
            ``(batch, k)`` ``uint8`` message estimates.  Use
            :meth:`decode_soft_batch_detailed` when the error flags or
            correction counts are also needed.
        """
        values = self._check_soft_batch(confidences)
        best_index, _ = resolve_backend(self.backend).correlation_decode(
            values, self._soft_codebook_signs()
        )
        return self.code.all_messages[best_index]

    def decode_soft_batch_detailed(self, confidences: np.ndarray) -> BatchDecodeResult:
        """Vectorised correlation (soft-ML) decoding of a whole batch.

        Scores all 2^k codewords against every row — exact maximum
        likelihood for any memoryless symmetric soft channel — and
        breaks score ties deterministically by the smallest message
        index (ties also raise ``detected_uncorrectable``, mirroring
        the hard decoders' ambiguity flag).  ``corrected_errors``
        counts where the chosen codeword differs from the sign-sliced
        input, aligning soft telemetry with the hard path's.

        Parameters
        ----------
        confidences : numpy.ndarray
            ``(batch, n)`` real confidence array.

        Returns
        -------
        BatchDecodeResult
            Row-aligned messages, codeword commitments, correction
            counts and tie flags.
        """
        values = self._check_soft_batch(confidences)
        best_index, ties = resolve_backend(self.backend).correlation_decode(
            values, self._soft_codebook_signs()
        )
        messages = self.code.all_messages[best_index]
        codewords = self.code.all_codewords[best_index]
        hard = (values < 0).astype(np.uint8)
        corrected = packed_hamming_distance(
            pack_rows(codewords, backend=self.backend),
            pack_rows(hard, backend=self.backend),
            backend=self.backend,
        )
        return BatchDecodeResult(
            messages=messages,
            codewords=codewords,
            corrected_errors=corrected.astype(np.int64),
            detected_uncorrectable=ties,
        )

    def _correlation_scores(self, values: np.ndarray) -> np.ndarray:
        """``(batch, 2^k)`` correlation of each row with every codeword.

        Elementwise product + axis sum (not BLAS matmul) keeps the
        floating-point reduction order identical for every batch size,
        so 1-row and 4096-row calls are bit-identical.
        """
        signs = self._soft_codebook_signs()
        return (values[:, None, :] * signs[None, :, :]).sum(axis=2)

    def _soft_codebook_signs(self) -> np.ndarray:
        """±1 rows of the codebook (``+1`` encodes bit 0), cached."""
        if self._codebook_signs is None:
            if self.code.k > SOFT_CODEBOOK_K_LIMIT:
                raise NotImplementedError(
                    f"correlation soft decoding enumerates 2^k codewords; "
                    f"k={self.code.k} exceeds the limit of "
                    f"{SOFT_CODEBOOK_K_LIMIT} — override decode_soft_batch_detailed"
                )
            self._codebook_signs = 1.0 - 2.0 * self.code.all_codewords.astype(
                np.float64
            )
        return self._codebook_signs

    def _check_soft_batch(self, confidences: np.ndarray) -> np.ndarray:
        values = np.asarray(confidences, dtype=np.float64)
        if values.ndim != 2 or values.shape[1] != self.code.n:
            raise ValueError(
                f"expected (batch, {self.code.n}) confidences, got {values.shape}"
            )
        return values

    def _check_received(self, received: Sequence[int]) -> np.ndarray:
        return as_bit_array(received, length=self.code.n)

    def _fallback_message(self, word: np.ndarray) -> np.ndarray:
        """Best message estimate for a detected-uncorrectable word.

        Reads the message bits verbatim when the code carries them at
        known positions; otherwise trusts the received word (solving
        against G when it happens to be a codeword, zeros when not).
        """
        positions = self.code.message_positions
        if positions is not None:
            return word[positions].copy()
        try:
            return self.code.extract_message(word)
        except Exception:
            return np.zeros(self.code.k, dtype=np.uint8)

    def _apply_fallback_messages(
        self, messages: np.ndarray, words: np.ndarray, flagged: np.ndarray
    ) -> None:
        """Overwrite flagged rows of ``messages`` with the scalar fallback.

        Batch paths compute messages via
        :meth:`~repro.coding.linear.LinearBlockCode.extract_message_batch`,
        which assumes valid codewords; flagged rows are not codewords,
        so when the code lacks verbatim message positions they must be
        re-estimated exactly as the scalar :meth:`_fallback_message`
        does (in-place, on the rare flagged subset only).
        """
        if flagged.any() and self.code.message_positions is None:
            for i in np.flatnonzero(flagged):
                messages[i] = self._fallback_message(words[i])

    def _check_received_batch(self, received: np.ndarray) -> np.ndarray:
        words = np.asarray(received, dtype=np.uint8)
        if words.ndim != 2 or words.shape[1] != self.code.n:
            raise DimensionError(
                f"expected (batch, {self.code.n}) received words, got {words.shape}"
            )
        return words

    def __repr__(self) -> str:
        return f"<{type(self).__name__} for {self.code.name}>"
