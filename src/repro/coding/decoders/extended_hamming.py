"""SEC-DED decoding for extended Hamming (dmin = 4) codes.

The extension bit raises dmin to 4, "enabling reliable detection of all
2- and 3-bit errors, while preserving single-error correction" (paper
Section II-A).  The decoding policy is the classical SEC-DED one:

* zero syndrome                         -> accept as-is;
* syndrome of a weight-1 coset          -> correct that single bit;
* any other syndrome                    -> *detect, do not correct*.

On detection the decoder falls back to reading the message bits straight
from the received word (the paper's codes carry m1..m4 verbatim at
c3, c5, c6, c7).  This fallback matters for Fig. 5: a double error
confined to parity channels leaves the delivered message intact, whereas
Hamming(7,4)'s complete decoder would *miscorrect* — flipping a third
bit whose coset support provably includes a message position (see
``tests/test_coding_analysis.py::test_h74_miscorrection_hits_message``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.coding.decoders.base import BatchDecodeResult, DecodeResult, Decoder
from repro.coding.linear import LinearBlockCode


class ExtendedHammingDecoder(Decoder):
    """Correct-1 / detect->=2 decoder with systematic fallback."""

    strategy_name = "sec-ded"

    def __init__(self, code: LinearBlockCode):
        if code.minimum_distance < 4:
            raise ValueError(
                "ExtendedHammingDecoder needs dmin >= 4, "
                f"got {code.minimum_distance} for {code.name}"
            )
        super().__init__(code)
        r = code.redundancy
        # Map syndrome index -> error position (or -1 when not weight-1).
        self._position_for_syndrome = np.full(1 << r, -1, dtype=np.int64)
        weights = 1 << np.arange(r - 1, -1, -1, dtype=np.int64)
        for pos in range(code.n):
            pattern = np.zeros(code.n, dtype=np.uint8)
            pattern[pos] = 1
            idx = int(self.code.syndrome(pattern).astype(np.int64) @ weights)
            self._position_for_syndrome[idx] = pos
        self._syndrome_weights = weights

    def decode(self, received: Sequence[int]) -> DecodeResult:
        """SEC-DED decode one word: correct singles, flag doubles.

        A zero syndrome accepts the word; a syndrome matching a single
        position flips it (one correction); any other syndrome raises
        ``detected_uncorrectable`` and falls back to the systematic
        message bits.
        """
        word = self._check_received(received)
        syndrome = self.code.syndrome(word)
        idx = int(syndrome.astype(np.int64) @ self._syndrome_weights)
        if idx == 0:
            message = self.code.extract_message(word)
            return DecodeResult(
                message=message,
                codeword=word.copy(),
                corrected_errors=0,
                detected_uncorrectable=False,
            )
        pos = int(self._position_for_syndrome[idx])
        if pos >= 0:
            codeword = word.copy()
            codeword[pos] ^= 1
            message = self.code.extract_message(codeword)
            return DecodeResult(
                message=message,
                codeword=codeword,
                corrected_errors=1,
                detected_uncorrectable=False,
            )
        # Detected uncorrectable (>= 2 errors): keep the raw message bits.
        return DecodeResult(
            message=self._fallback_message(word),
            codeword=None,
            corrected_errors=0,
            detected_uncorrectable=True,
        )

    def decode_batch_detailed(self, received: np.ndarray) -> BatchDecodeResult:
        """Vectorised SEC-DED decoding of a whole batch.

        Parameters
        ----------
        received : numpy.ndarray
            ``(batch, n)`` array of 0/1 received bits.

        Returns
        -------
        BatchDecodeResult
            Bit-identical to scalar :meth:`decode` per row: weight-1
            syndromes flip their bit (``corrected_errors == 1``), any
            other nonzero syndrome raises the detected-uncorrectable
            flag and keeps the raw word (systematic fallback).
        """
        words = self._check_received_batch(received)
        syndromes = self.code.syndrome_batch(words)
        indices = syndromes.astype(np.int64) @ self._syndrome_weights
        positions = self._position_for_syndrome[indices]
        corrected = words.copy()
        rows = np.nonzero(positions >= 0)[0]
        corrected[rows, positions[rows]] ^= 1
        flagged = (indices != 0) & (positions < 0)
        messages = self.code.extract_message_batch(corrected)
        self._apply_fallback_messages(messages, words, flagged)
        return BatchDecodeResult(
            messages=messages,
            codewords=corrected,
            corrected_errors=(positions >= 0).astype(np.int64),
            detected_uncorrectable=flagged,
        )
