"""Standard-array (coset-leader) syndrome decoding.

This is "syndrome decoding concept introduced by Hamming" (paper
Section II-A): compute the syndrome, look up the minimum-weight coset
leader, subtract it, and read the message back.  For a perfect code such
as Hamming(7,4) *every* syndrome maps to a weight<=1 leader, so the
decoder always corrects and never flags — which is exactly why 2-bit
errors get miscorrected (Table I worst case).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.coding.decoders.base import DecodeResult, Decoder
from repro.coding.linear import LinearBlockCode


class SyndromeDecoder(Decoder):
    """Coset-leader decoder for any short linear code.

    Parameters
    ----------
    code:
        The code to decode.
    max_correctable_weight:
        If set, leaders heavier than this raise the
        ``detected_uncorrectable`` flag instead of being applied
        (bounded-distance decoding).  ``None`` means complete decoding:
        every syndrome is corrected with its coset leader.
    """

    strategy_name = "syndrome"

    def __init__(self, code: LinearBlockCode, max_correctable_weight: int | None = None):
        super().__init__(code)
        self.max_correctable_weight = max_correctable_weight
        # Precompute a dense syndrome-indexed table for the batch path.
        r = code.redundancy
        self._leader_table = np.zeros((1 << r, code.n), dtype=np.uint8)
        self._leader_weight = np.zeros(1 << r, dtype=np.int64)
        for key, leader in code.coset_leaders.items():
            syn = np.frombuffer(key, dtype=np.uint8)
            idx = int(np.dot(syn, 1 << np.arange(r - 1, -1, -1, dtype=np.int64)))
            self._leader_table[idx] = leader
            self._leader_weight[idx] = int(leader.sum())

    def _syndrome_index(self, syndrome: np.ndarray) -> int:
        r = self.code.redundancy
        return int(np.dot(syndrome.astype(np.int64), 1 << np.arange(r - 1, -1, -1, dtype=np.int64)))

    def decode(self, received: Sequence[int]) -> DecodeResult:
        word = self._check_received(received)
        syndrome = self.code.syndrome(word)
        idx = self._syndrome_index(syndrome)
        leader = self._leader_table[idx]
        weight = int(self._leader_weight[idx])
        if self.max_correctable_weight is not None and weight > self.max_correctable_weight:
            # Bounded-distance mode: flag and fall back to raw extraction.
            message = self._fallback_message(word)
            return DecodeResult(
                message=message,
                codeword=None,
                corrected_errors=0,
                detected_uncorrectable=True,
            )
        codeword = word ^ leader
        message = self.code.extract_message(codeword)
        return DecodeResult(
            message=message,
            codeword=codeword,
            corrected_errors=weight,
            detected_uncorrectable=False,
        )

    def _fallback_message(self, word: np.ndarray) -> np.ndarray:
        positions = self.code.message_positions
        if positions is not None:
            return word[positions].copy()
        # Without verbatim positions, project onto the nearest codeword's
        # message via the zero-leader (i.e. trust the received word).
        try:
            return self.code.extract_message(word)
        except Exception:
            return np.zeros(self.code.k, dtype=np.uint8)

    def decode_batch(self, received: np.ndarray) -> np.ndarray:
        words = np.asarray(received, dtype=np.uint8)
        syndromes = self.code.syndrome_batch(words)
        r = self.code.redundancy
        weights = 1 << np.arange(r - 1, -1, -1, dtype=np.int64)
        indices = syndromes.astype(np.int64) @ weights
        leaders = self._leader_table[indices]
        if self.max_correctable_weight is not None:
            heavy = self._leader_weight[indices] > self.max_correctable_weight
            leaders = leaders.copy()
            leaders[heavy] = 0  # flagged words fall back to raw extraction
        codewords = words ^ leaders
        positions = self.code.message_positions
        if positions is not None:
            return codewords[:, positions].copy()
        return np.array([self.code.extract_message(cw) for cw in codewords], dtype=np.uint8)
