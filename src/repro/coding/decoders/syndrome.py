"""Standard-array (coset-leader) syndrome decoding.

This is "syndrome decoding concept introduced by Hamming" (paper
Section II-A): compute the syndrome, look up the minimum-weight coset
leader, subtract it, and read the message back.  For a perfect code such
as Hamming(7,4) *every* syndrome maps to a weight<=1 leader, so the
decoder always corrects and never flags — which is exactly why 2-bit
errors get miscorrected (Table I worst case).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backends import resolve_backend
from repro.coding.decoders.base import BatchDecodeResult, DecodeResult, Decoder
from repro.coding.linear import LinearBlockCode


class SyndromeDecoder(Decoder):
    """Coset-leader decoder for any short linear code.

    Parameters
    ----------
    code:
        The code to decode.
    max_correctable_weight:
        If set, leaders heavier than this raise the
        ``detected_uncorrectable`` flag instead of being applied
        (bounded-distance decoding).  ``None`` means complete decoding:
        every syndrome is corrected with its coset leader.
    """

    strategy_name = "syndrome"

    def __init__(self, code: LinearBlockCode, max_correctable_weight: int | None = None):
        super().__init__(code)
        self.max_correctable_weight = max_correctable_weight
        # Precompute a dense syndrome-indexed table for the batch path.
        r = code.redundancy
        self._parity = np.ascontiguousarray(code.parity_check.to_array())
        self._syndrome_weights = 1 << np.arange(r - 1, -1, -1, dtype=np.int64)
        self._leader_table = np.zeros((1 << r, code.n), dtype=np.uint8)
        self._leader_weight = np.zeros(1 << r, dtype=np.int64)
        for key, leader in code.coset_leaders.items():
            syn = np.frombuffer(key, dtype=np.uint8)
            idx = int(np.dot(syn, self._syndrome_weights))
            self._leader_table[idx] = leader
            self._leader_weight[idx] = int(leader.sum())

    def _syndrome_index(self, syndrome: np.ndarray) -> int:
        return int(np.dot(syndrome.astype(np.int64), self._syndrome_weights))

    def decode(self, received: Sequence[int]) -> DecodeResult:
        """Standard-array decode one word via its coset leader.

        Looks the syndrome up in the precomputed leader table and
        subtracts the leader; with ``max_correctable_weight`` set,
        heavier leaders flag ``detected_uncorrectable`` instead
        (bounded-distance decoding).
        """
        word = self._check_received(received)
        syndrome = self.code.syndrome(word)
        idx = self._syndrome_index(syndrome)
        leader = self._leader_table[idx]
        weight = int(self._leader_weight[idx])
        if self.max_correctable_weight is not None and weight > self.max_correctable_weight:
            # Bounded-distance mode: flag and fall back to raw extraction.
            message = self._fallback_message(word)
            return DecodeResult(
                message=message,
                codeword=None,
                corrected_errors=0,
                detected_uncorrectable=True,
            )
        codeword = word ^ leader
        message = self.code.extract_message(codeword)
        return DecodeResult(
            message=message,
            codeword=codeword,
            corrected_errors=weight,
            detected_uncorrectable=False,
        )

    def decode_batch_detailed(self, received: np.ndarray) -> BatchDecodeResult:
        """Vectorised coset-leader decoding of a whole batch.

        Parameters
        ----------
        received : numpy.ndarray
            ``(batch, n)`` array of 0/1 received bits.

        Returns
        -------
        BatchDecodeResult
            Bit-identical to scalar :meth:`decode` per row: one fused
            backend kernel computes syndromes, gathers leaders from the
            dense table and applies them, flagging (in bounded-distance
            mode) heavy-leader rows instead of correcting them.
        """
        words = self._check_received_batch(received)
        max_weight = (
            -1 if self.max_correctable_weight is None else self.max_correctable_weight
        )
        codewords, corrected, flagged = resolve_backend(self.backend).syndrome_decode(
            np.ascontiguousarray(words),
            self._parity,
            self._leader_table,
            self._leader_weight,
            max_weight,
        )
        messages = self.code.extract_message_batch(codewords)
        self._apply_fallback_messages(messages, words, flagged)
        return BatchDecodeResult(
            messages=messages,
            codewords=codewords,
            corrected_errors=corrected,
            detected_uncorrectable=flagged,
        )
