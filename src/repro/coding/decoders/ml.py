"""Exhaustive maximum-likelihood (nearest-codeword) decoding.

The reference decoder for the exhaustive analyses: scans all 2^k
codewords and picks the closest in Hamming distance.  Ties flag the word
``detected_uncorrectable`` and resolve to the smallest message index, so
decoding regions are deterministic.
"""

from __future__ import annotations

from functools import cached_property
from typing import Sequence

import numpy as np

from repro.backends import resolve_backend
from repro.coding.decoders.base import BatchDecodeResult, DecodeResult, Decoder
from repro.gf2.bitpack import pack_rows


class MaximumLikelihoodDecoder(Decoder):
    """Brute-force nearest-codeword decoder (reference implementation)."""

    strategy_name = "ml"

    @cached_property
    def _packed_codebook(self) -> np.ndarray:
        """All 2^k codewords bit-packed once per decoder instance."""
        return pack_rows(self.code.all_codewords)

    def decode(self, received: Sequence[int]) -> DecodeResult:
        """Exhaustive nearest-codeword decode of one word.

        Scans all 2^k codewords for the minimum Hamming distance;
        distance ties raise ``detected_uncorrectable`` and resolve to
        the smallest message index, so the reference is deterministic.
        """
        word = self._check_received(received)
        codewords = self.code.all_codewords
        distances = np.count_nonzero(codewords != word[None, :], axis=1)
        best = int(distances.min())
        candidates = np.nonzero(distances == best)[0]
        index = int(candidates[0])
        message = self.code.all_messages[index].copy()
        codeword = codewords[index].copy()
        return DecodeResult(
            message=message,
            codeword=codeword,
            corrected_errors=best,
            detected_uncorrectable=len(candidates) > 1,
        )

    def decode_batch_detailed(self, received: np.ndarray) -> BatchDecodeResult:
        """Vectorised nearest-codeword search over the whole batch.

        Parameters
        ----------
        received : numpy.ndarray
            ``(batch, n)`` array of 0/1 received bits.

        Returns
        -------
        BatchDecodeResult
            Bit-identical to scalar :meth:`decode` per row.  Received
            words and the codebook are bit-packed so the whole
            ``(batch, 2^k)`` distance matrix is XOR + popcount on
            ``uint64`` words; distance ties keep the smallest message
            index and raise ``detected_uncorrectable``.
        """
        words = self._check_received_batch(received)
        indices, best, ties = resolve_backend(self.backend).nearest_codeword(
            pack_rows(words, backend=self.backend), self._packed_codebook
        )
        return BatchDecodeResult(
            messages=self.code.all_messages[indices].copy(),
            codewords=self.code.all_codewords[indices].copy(),
            corrected_errors=best.astype(np.int64),
            detected_uncorrectable=ties,
        )
