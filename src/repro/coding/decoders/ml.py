"""Exhaustive maximum-likelihood (nearest-codeword) decoding.

The reference decoder for the exhaustive analyses: scans all 2^k
codewords and picks the closest in Hamming distance.  Ties flag the word
``detected_uncorrectable`` and resolve to the smallest message index, so
decoding regions are deterministic.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.coding.decoders.base import DecodeResult, Decoder


class MaximumLikelihoodDecoder(Decoder):
    """Brute-force nearest-codeword decoder (reference implementation)."""

    strategy_name = "ml"

    def decode(self, received: Sequence[int]) -> DecodeResult:
        word = self._check_received(received)
        codewords = self.code.all_codewords
        distances = np.count_nonzero(codewords != word[None, :], axis=1)
        best = int(distances.min())
        candidates = np.nonzero(distances == best)[0]
        index = int(candidates[0])
        message = self.code.all_messages[index].copy()
        codeword = codewords[index].copy()
        return DecodeResult(
            message=message,
            codeword=codeword,
            corrected_errors=best,
            detected_uncorrectable=len(candidates) > 1,
        )

    def decode_batch(self, received: np.ndarray) -> np.ndarray:
        words = np.asarray(received, dtype=np.uint8)
        codewords = self.code.all_codewords
        # (batch, 2^k) distance matrix; fine for the short codes here.
        distances = (words[:, None, :] != codewords[None, :, :]).sum(axis=2)
        indices = distances.argmin(axis=1)
        return self.code.all_messages[indices].copy()
