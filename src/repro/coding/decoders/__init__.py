"""Decoders for the lightweight codes.

The paper's Fig. 1 decoder sits on the room-temperature CMOS side, so
unlike the encoders it is implemented algorithmically (no SFQ netlist).
Four strategies are provided:

* :class:`~repro.coding.decoders.syndrome.SyndromeDecoder` — standard
  array / coset-leader decoding for any short code (always corrects).
* :class:`~repro.coding.decoders.extended_hamming.ExtendedHammingDecoder`
  — correct-single / detect-double with a systematic-fallback policy,
  the industry SEC-DED behaviour for dmin=4 codes.
* :class:`~repro.coding.decoders.reed.ReedDecoder` — majority-logic
  decoding of RM(1, m) (the paper's Ref. [31]).
* :class:`~repro.coding.decoders.fht.FhtDecoder` — fast-Hadamard
  (Green machine) maximum-likelihood decoding of RM(1, m) with a
  deterministic tie-break, which corrects "certain 2-bit error
  patterns" (paper Section II-B, Ref. [35]).
* :class:`~repro.coding.decoders.ml.MaximumLikelihoodDecoder` —
  exhaustive nearest-codeword reference.
"""

from repro.coding.decoders.base import BatchDecodeResult, Decoder, DecodeResult
from repro.coding.decoders.syndrome import SyndromeDecoder
from repro.coding.decoders.extended_hamming import ExtendedHammingDecoder
from repro.coding.decoders.reed import ReedDecoder
from repro.coding.decoders.fht import FhtDecoder
from repro.coding.decoders.ml import MaximumLikelihoodDecoder
from repro.coding.decoders.soft import SoftFhtDecoder

__all__ = [
    "BatchDecodeResult",
    "Decoder",
    "DecodeResult",
    "SyndromeDecoder",
    "ExtendedHammingDecoder",
    "ReedDecoder",
    "FhtDecoder",
    "MaximumLikelihoodDecoder",
    "SoftFhtDecoder",
]


def default_decoder_for(code) -> Decoder:
    """Pick the decoder the paper pairs with each code.

    * Hamming(7,4) -> syndrome decoder (perfect code, always corrects)
    * Hamming(8,4) -> extended-Hamming SEC-DED decoder
    * RM(1,3)      -> FHT decoder
    * interleaved / concatenated composites -> their wrapper decoders
      (which recurse into this pairing for the constituent codes)
    * anything else -> syndrome decoder
    """
    # Lazy import: repro.coding.interleave imports this module.  The
    # composites must short-circuit here — a generic syndrome decoder
    # would tabulate 2^(depth·(n-k)) coset leaders for a deep composite.
    from repro.coding.interleave import (
        ConcatenatedCode,
        ConcatenatedDecoder,
        InterleavedCode,
        InterleavedDecoder,
    )

    if isinstance(code, InterleavedCode):
        return InterleavedDecoder(code)
    if isinstance(code, ConcatenatedCode):
        return ConcatenatedDecoder(code)
    name = getattr(code, "name", "")
    if name.startswith("RM(1,"):
        return FhtDecoder(code)
    if code.minimum_distance == 4 and name.startswith("Hamming"):
        return ExtendedHammingDecoder(code)
    return SyndromeDecoder(code)
