"""Reed majority-logic decoding for first-order Reed-Muller codes.

This is the original decoding scheme of the paper's Ref. [31] (Reed,
1954) specialised to RM(1, m): each monomial coefficient m_{j+1} is
recovered by a majority vote over the 2^(m-1) disjoint derivative pairs
``r_i ^ r_{i ^ 2^j}``, then the constant term m1 by a majority over the
residual.  A tie in any vote marks the word detected-uncorrectable; the
affected coefficient falls back to 0 and the residual majority breaks
ties toward 0 — deterministic, so decoding regions are well defined.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.coding.decoders.base import DecodeResult, Decoder
from repro.coding.linear import LinearBlockCode


class ReedDecoder(Decoder):
    """Majority-logic decoder for RM(1, m)."""

    strategy_name = "reed-majority"

    def __init__(self, code: LinearBlockCode):
        super().__init__(code)
        from repro.coding.decoders.fht import _check_rm1m

        self.m = _check_rm1m(code, "ReedDecoder")

    def decode(self, received: Sequence[int]) -> DecodeResult:
        word = self._check_received(received)
        m = self.m
        n = self.code.n
        tie = False
        coefficients = np.zeros(m, dtype=np.uint8)  # m2..m_{m+1}
        for j in range(m):
            votes = 0
            pairs = 0
            for i in range(n):
                if not (i >> j) & 1:
                    votes += int(word[i] ^ word[i ^ (1 << j)])
                    pairs += 1
            if 2 * votes > pairs:
                coefficients[j] = 1
            elif 2 * votes == pairs:
                tie = True  # coefficient falls back to 0
        # Strip the recovered linear part and majority-vote the constant.
        residual = word.copy()
        for j in range(m):
            if coefficients[j]:
                for i in range(n):
                    if (i >> j) & 1:
                        residual[i] ^= 1
        ones = int(residual.sum())
        if 2 * ones > n:
            m1 = 1
        elif 2 * ones == n:
            m1 = 0
            tie = True
        else:
            m1 = 0
        message = np.concatenate([[m1], coefficients]).astype(np.uint8)
        codeword = self.code.encode(message)
        corrected = int(np.count_nonzero(codeword ^ word))
        return DecodeResult(
            message=message,
            codeword=codeword,
            corrected_errors=corrected,
            detected_uncorrectable=tie,
        )
