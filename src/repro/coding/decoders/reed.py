"""Reed majority-logic decoding for first-order Reed-Muller codes.

This is the original decoding scheme of the paper's Ref. [31] (Reed,
1954) specialised to RM(1, m): each monomial coefficient m_{j+1} is
recovered by a majority vote over the 2^(m-1) disjoint derivative pairs
``r_i ^ r_{i ^ 2^j}``, then the constant term m1 by a majority over the
residual.  A tie in any vote marks the word detected-uncorrectable; the
affected coefficient falls back to 0 and the residual majority breaks
ties toward 0 — deterministic, so decoding regions are well defined.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.coding.decoders.base import BatchDecodeResult, DecodeResult, Decoder
from repro.coding.linear import LinearBlockCode
from repro.gf2.bitpack import pack_rows, packed_hamming_distance


class ReedDecoder(Decoder):
    """Majority-logic decoder for RM(1, m)."""

    strategy_name = "reed-majority"

    def __init__(self, code: LinearBlockCode):
        super().__init__(code)
        from repro.coding.decoders.fht import _check_rm1m

        self.m = _check_rm1m(code, "ReedDecoder")

    def decode(self, received: Sequence[int]) -> DecodeResult:
        """Majority-logic decode one RM(1, m) word (Reed's algorithm).

        Each first-order coefficient is voted on by its 2^(m-1)
        parallel bit pairs; the constant term is re-estimated from the
        residual.  Exact vote ties raise ``detected_uncorrectable``.
        """
        word = self._check_received(received)
        m = self.m
        n = self.code.n
        tie = False
        coefficients = np.zeros(m, dtype=np.uint8)  # m2..m_{m+1}
        for j in range(m):
            votes = 0
            pairs = 0
            for i in range(n):
                if not (i >> j) & 1:
                    votes += int(word[i] ^ word[i ^ (1 << j)])
                    pairs += 1
            if 2 * votes > pairs:
                coefficients[j] = 1
            elif 2 * votes == pairs:
                tie = True  # coefficient falls back to 0
        # Strip the recovered linear part and majority-vote the constant.
        residual = word.copy()
        for j in range(m):
            if coefficients[j]:
                for i in range(n):
                    if (i >> j) & 1:
                        residual[i] ^= 1
        ones = int(residual.sum())
        if 2 * ones > n:
            m1 = 1
        elif 2 * ones == n:
            m1 = 0
            tie = True
        else:
            m1 = 0
        message = np.concatenate([[m1], coefficients]).astype(np.uint8)
        codeword = self.code.encode(message)
        corrected = int(np.count_nonzero(codeword ^ word))
        return DecodeResult(
            message=message,
            codeword=codeword,
            corrected_errors=corrected,
            detected_uncorrectable=tie,
        )

    def _batch_messages(self, words: np.ndarray):
        """Batched majority votes: ``(messages, ties)`` for validated words."""
        batch = words.shape[0]
        m, n = self.m, self.code.n
        positions = np.arange(n)
        coefficients = np.zeros((batch, m), dtype=np.uint8)
        tie = np.zeros(batch, dtype=bool)
        for j in range(m):
            low = positions[(positions >> j) & 1 == 0]
            votes = (words[:, low] ^ words[:, low ^ (1 << j)]).sum(axis=1, dtype=np.int64)
            pairs = low.size
            coefficients[:, j] = 2 * votes > pairs
            tie |= 2 * votes == pairs
        # Strip the recovered linear part and majority-vote the constant.
        monomials = ((positions[None, :] >> np.arange(m)[:, None]) & 1).astype(np.uint8)
        linear_part = ((coefficients.astype(np.uint32) @ monomials.astype(np.uint32)) % 2)
        residual = words ^ linear_part.astype(np.uint8)
        ones = residual.sum(axis=1, dtype=np.int64)
        m1 = (2 * ones > n).astype(np.uint8)
        tie |= 2 * ones == n
        return np.concatenate([m1[:, None], coefficients], axis=1), tie

    def decode_batch(self, received: np.ndarray) -> np.ndarray:
        """Message-only batch decode, skipping the re-encode.

        The Monte-Carlo hot loops only consume message estimates, so
        this skips the codeword/corrected-error bookkeeping that
        :meth:`decode_batch_detailed` adds.
        """
        return self._batch_messages(self._check_received_batch(received))[0]

    def decode_batch_detailed(self, received: np.ndarray) -> BatchDecodeResult:
        """Vectorised majority-logic decoding of a whole batch.

        Parameters
        ----------
        received : numpy.ndarray
            ``(batch, n)`` array of 0/1 received bits.

        Returns
        -------
        BatchDecodeResult
            Bit-identical to scalar :meth:`decode` per row: each
            derivative-pair vote becomes one column-gather XOR and a
            row sum across the batch, tie votes raise
            ``detected_uncorrectable``, and tied coefficients fall back
            to 0 exactly as the scalar rule does.
        """
        words = self._check_received_batch(received)
        messages, tie = self._batch_messages(words)
        codewords = self.code.encode_batch(messages)
        corrected = packed_hamming_distance(pack_rows(codewords), pack_rows(words))
        return BatchDecodeResult(
            messages=messages,
            codewords=codewords,
            corrected_errors=corrected,
            detected_uncorrectable=tie,
        )
