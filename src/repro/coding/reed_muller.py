"""Reed-Muller codes RM(r, m) via the Plotkin construction.

The paper's third encoder uses RM(1,3), the [8,4,4] first-order
Reed-Muller code.  :func:`reed_muller` builds the whole family
recursively (Plotkin's (u | u+v) construction, the paper's Ref. [33]);
:func:`rm13_paper` pins down the exact generator used by the encoder
schematic in Fig. 4, whose rows are the all-ones vector and the three
coordinate functions, so that:

* c(i) = m1 ^ m2*b0(i) ^ m3*b1(i) ^ m4*b2(i)

with ``b2 b1 b0`` the binary index of output i (0-indexed).  That
matches output c1 = m1 and c8 = m1^m2^m3^m4 in the schematic.
"""

from __future__ import annotations

from math import comb
from typing import List

import numpy as np

from repro.coding.linear import LinearBlockCode
from repro.gf2.matrix import GF2Matrix


def rm_generator(r: int, m: int) -> GF2Matrix:
    """Generator matrix of RM(r, m) via recursion on monomial degree.

    Rows are the evaluation vectors of all monomials of degree <= r in m
    boolean variables, ordered by degree then lexicographically; the
    degree-0 row (all ones) comes first, then x1, x2, ..., matching the
    classical presentation.
    """
    if m < 0:
        raise ValueError("m must be non-negative")
    if not 0 <= r <= m:
        raise ValueError(f"order r must lie in [0, m]={m}, got {r}")
    n = 1 << m
    # Coordinate functions: x_j(i) = bit (m-j) of i? Use x1 = LSB so that
    # the paper's Fig. 4 layout (c2 = m1^m2) holds.
    coords = np.zeros((m, n), dtype=np.uint8)
    for j in range(m):
        for i in range(n):
            coords[j, i] = (i >> j) & 1
    rows: List[np.ndarray] = [np.ones(n, dtype=np.uint8)]
    from itertools import combinations

    for degree in range(1, r + 1):
        for subset in combinations(range(m), degree):
            prod = np.ones(n, dtype=np.uint8)
            for j in subset:
                prod &= coords[j]
            rows.append(prod)
    return GF2Matrix(np.array(rows, dtype=np.uint8))


def rm_dimension(r: int, m: int) -> int:
    """Dimension k = sum_{i<=r} C(m, i) of RM(r, m)."""
    return sum(comb(m, i) for i in range(r + 1))


def reed_muller(r: int, m: int) -> LinearBlockCode:
    """The Reed-Muller code RM(r, m) as a :class:`LinearBlockCode`.

    dmin = 2^(m-r) (not checked here; verified exhaustively in tests for
    the small members).
    """
    gen = rm_generator(r, m)
    code = LinearBlockCode(gen, name=f"RM({r},{m})")
    return code


def rm13_paper() -> LinearBlockCode:
    """The paper's RM(1,3) code, generator aligned with Fig. 4.

    G rows (m1..m4):

    * m1 -> 11111111 (all-ones)
    * m2 -> 01010101 (x1)
    * m3 -> 00110011 (x2)
    * m4 -> 00001111 (x3)

    so c1 = m1, c2 = m1^m2, c3 = m1^m3, c4 = m1^m2^m3, c5 = m1^m4,
    c6 = m1^m2^m4, c7 = m1^m3^m4, c8 = m1^m2^m3^m4.
    """
    return reed_muller(1, 3)


def plotkin_combine(u_code: LinearBlockCode, v_code: LinearBlockCode) -> LinearBlockCode:
    """Plotkin (u | u+v) combination of two equal-length codes.

    Produces a code of length 2n and dimension k_u + k_v; for
    RM(r, m) = plotkin(RM(r, m-1), RM(r-1, m-1)) this is the recursive
    construction the paper's Section II-B refers to.
    """
    if u_code.n != v_code.n:
        raise ValueError("Plotkin construction needs equal-length components")
    n = u_code.n
    gu = u_code.generator.to_array()
    gv = v_code.generator.to_array()
    top = np.concatenate([gu, gu], axis=1)
    bottom = np.concatenate([np.zeros_like(gv), gv], axis=1)
    gen = np.concatenate([top, bottom], axis=0)
    return LinearBlockCode(
        GF2Matrix(gen),
        name=f"plotkin({u_code.name},{v_code.name})",
    )


def rm13_message_from_codeword(codeword: np.ndarray) -> np.ndarray:
    """Recover (m1..m4) from a *valid* RM(1,3) codeword.

    m1 = c1; m2 = c1^c2; m3 = c1^c3; m4 = c1^c5 (0-indexed: 0,1,2,4).
    """
    cw = np.asarray(codeword, dtype=np.uint8)
    if cw.shape != (8,):
        raise ValueError(f"expected an 8-bit RM(1,3) codeword, got shape {cw.shape}")
    m1 = cw[0]
    return np.array([m1, m1 ^ cw[1], m1 ^ cw[2], m1 ^ cw[4]], dtype=np.uint8)
