"""Coding-theory layer: the lightweight codes of the paper.

Public surface:

* code constructors — :func:`~repro.coding.hamming.hamming74_paper`,
  :func:`~repro.coding.hamming.hamming84_paper`,
  :func:`~repro.coding.reed_muller.rm13_paper`, plus the generic
  Hamming / Reed-Muller / BCH families for ablations;
* :class:`~repro.coding.linear.LinearBlockCode` — the common machinery;
* decoders in :mod:`repro.coding.decoders`;
* the exhaustive Table-I analysis in :mod:`repro.coding.analysis`;
* the name registry in :mod:`repro.coding.registry`;
* burst-resilience composition — interleavers and interleaved /
  concatenated codes — in :mod:`repro.coding.interleave`;
* online sliding-window decoding of convolutionally-interleaved frame
  streams in :mod:`repro.coding.stream`.
"""

from repro.coding.linear import LinearBlockCode
from repro.coding.interleave import (
    BlockInterleaver,
    ConcatenatedCode,
    ConcatenatedDecoder,
    ConvolutionalInterleaver,
    InterleavedCode,
    InterleavedDecoder,
    StreamInterleaver,
)
from repro.coding.stream import (
    SlidingWindowDecoder,
    StreamDecisions,
    deinterleave_stream,
    interleave_stream,
    stream_span,
)
from repro.coding.hamming import (
    hamming74_paper,
    hamming84_paper,
    hamming_code,
    extend_with_overall_parity,
)
from repro.coding.reed_muller import reed_muller, rm13_paper, plotkin_combine
from repro.coding.bch import bch_code, bch_15_7, bch_15_11
from repro.coding.repetition import repetition_code, bitwise_repetition_code
from repro.coding.parity import parity_check_code
from repro.coding.registry import (
    available_codes,
    available_decoders,
    get_code,
    get_decoder,
    PAPER_SCHEMES,
    DISPLAY_NAMES,
)

__all__ = [
    "LinearBlockCode",
    "StreamInterleaver",
    "BlockInterleaver",
    "ConvolutionalInterleaver",
    "InterleavedCode",
    "InterleavedDecoder",
    "ConcatenatedCode",
    "ConcatenatedDecoder",
    "SlidingWindowDecoder",
    "StreamDecisions",
    "interleave_stream",
    "deinterleave_stream",
    "stream_span",
    "hamming74_paper",
    "hamming84_paper",
    "hamming_code",
    "extend_with_overall_parity",
    "reed_muller",
    "rm13_paper",
    "plotkin_combine",
    "bch_code",
    "bch_15_7",
    "bch_15_11",
    "repetition_code",
    "bitwise_repetition_code",
    "parity_check_code",
    "available_codes",
    "available_decoders",
    "get_code",
    "get_decoder",
    "PAPER_SCHEMES",
    "DISPLAY_NAMES",
]
