"""The cryogenic digital output data link of the paper's Fig. 1.

A :class:`CryogenicDataLink` chains the pieces end to end:

    SFQ controller (message source)
      -> ECC encoder netlist at 4.2 K (with PPV faults)
      -> SFQ-to-DC output channels (cells of the netlist)
      -> cryogenic cables (optional additive-noise channel)
      -> room-temperature decoder (CMOS side)

``transmit`` pushes a batch of messages through one sampled chip and
reports how many decoded messages are erroneous — the quantity Fig. 5
accumulates over 1000 chips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.coding.decoders.base import Decoder
from repro.encoders.designs import EncoderDesign
from repro.sfq.faults import ChipFaults, FaultSimulator
from repro.utils.rng import RandomState, as_generator


@dataclass
class TransmissionResult:
    """Outcome of one batch transmission over one chip."""

    sent_messages: np.ndarray       # (batch, k)
    channel_bits: np.ndarray        # (batch, n) as received at 300 K
    decoded_messages: np.ndarray    # (batch, k)
    erroneous: np.ndarray           # (batch,) bool — decoded != sent

    @property
    def n_erroneous(self) -> int:
        """The paper's per-chip statistic N."""
        return int(self.erroneous.sum())

    @property
    def message_error_rate(self) -> float:
        return float(self.erroneous.mean())


class CryogenicDataLink:
    """End-to-end link for one encoder design.

    Parameters
    ----------
    design:
        The encoder design (or the no-encoder baseline).
    decoder_strategy:
        Override the paper's default decoder pairing (used by the
        decoder-policy ablation); ignored for the baseline.
    channel:
        Optional channel model (e.g. ``repro.link.BinaryChannel``)
        applied between the SFQ chip and the decoder.  ``None`` models
        the paper's Fig. 5 setup where PPV is the only error source.
    """

    def __init__(
        self,
        design: EncoderDesign,
        decoder_strategy: Optional[str] = None,
        channel: Optional[object] = None,
    ):
        self.design = design
        self.simulator = FaultSimulator(design.netlist)
        self.decoder: Optional[Decoder] = design.decoder(decoder_strategy)
        self.channel = channel

    @property
    def message_bits(self) -> int:
        return self.simulator.message_width

    def transmit(
        self,
        messages: np.ndarray,
        chip_faults: Optional[ChipFaults] = None,
        random_state: RandomState = None,
    ) -> TransmissionResult:
        """Send a ``(batch, k)`` message array through one chip."""
        rng = as_generator(random_state)
        msgs = np.asarray(messages, dtype=np.uint8)
        channel_bits = self.simulator.run(msgs, chip_faults, rng)
        if self.channel is not None:
            channel_bits = self.channel.transmit(channel_bits, rng)
        if self.decoder is None:
            decoded = channel_bits[:, : msgs.shape[1]].copy()
        else:
            decoded = self.decoder.decode_batch(channel_bits)
        erroneous = (decoded != msgs).any(axis=1)
        return TransmissionResult(
            sent_messages=msgs,
            channel_bits=channel_bits,
            decoded_messages=decoded,
            erroneous=erroneous,
        )
