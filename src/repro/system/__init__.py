"""End-to-end system layer: the Fig. 1 data link, the Fig. 5 experiment
and the one-time sensitivity calibration."""

from repro.system.datalink import CryogenicDataLink, TransmissionResult
from repro.system.experiment import (
    Fig5Config,
    Fig5Result,
    SchemeResult,
    run_fig5_experiment,
)
from repro.system.calibration import (
    PAPER_FIG5_TARGETS,
    analytic_p_zero,
    calibrate_margins,
)

__all__ = [
    "CryogenicDataLink",
    "TransmissionResult",
    "Fig5Config",
    "Fig5Result",
    "SchemeResult",
    "run_fig5_experiment",
    "PAPER_FIG5_TARGETS",
    "analytic_p_zero",
    "calibrate_margins",
]
