"""One-time sensitivity calibration against the paper's Fig. 5 anchors.

The paper's failure physics lives inside JoSIM; the reproduction's
margin model has four free per-cell-type sensitivities (SFQ-to-DC
driver, XOR, DFF, splitter).  This module fits them — once — to the
four P(N = 0) anchors of Section IV:

    no encoder 80.0 %, RM(1,3) 86.7 %, Hamming(7,4) 89.8 %,
    Hamming(8,4) 92.7 %

using a closed-form approximation of P(N = 0) that keeps the model's
causal structure explicit:

* a chip delivers all 100 messages correctly iff its set of marginal
  cells is *tolerable* for the scheme's decoder;
* a fault at cell i corrupts (at most) the outputs in its fan-out cone
  ``cone_i`` (through data and clock edges);
* tolerable fault sets:

  - **no encoder** — none (any marginal cell eventually corrupts);
  - **Hamming(7,4) / RM(1,3)** — all marginal cones inside one single
    output position (always a correctable weight-<=1 error).  A
    parity-only *pair* is NOT tolerable for Hamming(7,4): the complete
    decoder miscorrects it onto a weight-3 codeword support, which
    provably includes a message position;
  - **Hamming(8,4)** — additionally, any fault set whose cone union
    stays inside the parity positions {c1, c2, c4, c8}: the SEC-DED
    decoder corrects single manifests and *detects* multi-bit ones,
    and its systematic fallback then delivers the intact message bits.

* a first-order "shallow-marginal luck" term adds the probability that
  a non-tolerable marginal cell simply never manifests across the 100
  transmissions (the severity law makes shallow violations nearly
  silent).

The fitted margins ship as
:data:`repro.ppv.margins.DEFAULT_MARGINS`; rerun this module
(``python -m repro.system.calibration``) to regenerate them, and see
``benchmarks/bench_fig5.py`` for the Monte-Carlo validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.encoders.designs import EncoderDesign, design_for_scheme
from repro.errors import CalibrationError
from repro.ppv.margins import MarginModel
from repro.ppv.spread import SpreadSpec
from repro.sfq.cells import DFF, SFQ_TO_DC, SPLITTER, XOR

#: Section IV's quoted probabilities of zero errors in 100 messages.
PAPER_FIG5_TARGETS: Dict[str, float] = {
    "none": 0.800,
    "rm13": 0.867,
    "hamming74": 0.898,
    "hamming84": 0.927,
}

#: Parity (non-message) output positions of the Hamming(8,4) encoder:
#: c1, c2, c4, c8 — the message rides on c3, c5, c6, c7 (paper Eq. (3)).
HAMMING84_PARITY_OUTPUTS = ("c1", "c2", "c4", "c8")


def _cell_cones_and_probs(
    design: EncoderDesign, model: MarginModel, spread: SpreadSpec
) -> List[Tuple[frozenset, float]]:
    """(fan-out cone, marginal probability) for every cell instance."""
    out = []
    netlist = design.netlist
    for name, cell in netlist.cells.items():
        q = model.marginal_probability(
            cell.cell_type.name, cell.cell_type.jj_count, spread
        )
        cone = netlist.forward_cone(name, include_clock=True)
        out.append((cone, q))
    return out


def _shallow_luck_factor(model: MarginModel, n_messages: int) -> float:
    """E[P(no manifestation in n_messages)] over the severity law.

    A marginal cell manifests per message with probability ~eps/2 (drop
    faults corrupt only messages whose affected value is 1).  With the
    default gamma = 1 severity law eps is uniform on (0, eps_max], and
    the expectation has the closed form used here.
    """
    eps_max = model.eps_max
    if eps_max <= 0:
        return 1.0
    if model.gamma != 1.0:
        # Numerical fallback for non-linear severity laws.
        grid = np.linspace(1e-4, 1.0, 512)
        eps = eps_max * grid**model.gamma
        return float(np.mean((1.0 - eps / 2.0) ** n_messages))
    m = n_messages + 1
    return float(2.0 * (1.0 - (1.0 - eps_max / 2.0) ** m) / (m * eps_max))


def analytic_p_zero(
    design: EncoderDesign,
    model: MarginModel,
    spread: SpreadSpec,
    n_messages: int = 100,
) -> float:
    """Closed-form approximation of P(N = 0) for one scheme."""
    cones = _cell_cones_and_probs(design, model, spread)
    p_all_healthy = float(np.prod([1.0 - q for _, q in cones]))

    def prob_all_outside_healthy(allowed: frozenset) -> float:
        """P(every cell whose cone leaves ``allowed`` is healthy)."""
        return float(
            np.prod([1.0 - q for cone, q in cones if not cone <= allowed])
        )

    scheme = design.scheme
    if scheme == "none":
        structural = p_all_healthy
    elif scheme == "hamming84":
        parity = frozenset(HAMMING84_PARITY_OUTPUTS)
        structural = prob_all_outside_healthy(parity)
        for output in design.netlist.outputs:
            if output in parity:
                continue
            structural += prob_all_outside_healthy(frozenset([output])) - p_all_healthy
    else:  # hamming74, rm13: single-position cone unions only
        structural = p_all_healthy
        for output in design.netlist.outputs:
            structural += prob_all_outside_healthy(frozenset([output])) - p_all_healthy

    # First-order shallow-marginal luck on non-tolerated chips.
    luck = _shallow_luck_factor(model, n_messages)
    return min(1.0, structural + luck * (1.0 - structural))


def _margins_from_exceedance(p: Sequence[float], spread: SpreadSpec) -> Dict[str, float]:
    """Convert per-parameter exceedance probabilities to margins."""
    if spread.distribution != "uniform":
        raise CalibrationError("calibration assumes the uniform spread law")
    s = spread.fraction
    names = (SFQ_TO_DC, XOR, DFF, SPLITTER)
    return {name: s * (1.0 - float(pi)) for name, pi in zip(names, p)}


def calibrate_margins(
    targets: Optional[Mapping[str, float]] = None,
    spread: Optional[SpreadSpec] = None,
    n_messages: int = 100,
    base_model: Optional[MarginModel] = None,
) -> Tuple[MarginModel, Dict[str, float]]:
    """Fit the four cell-type margins to the Fig. 5 anchors.

    Returns the calibrated model and the achieved analytic anchors.
    """
    from scipy.optimize import least_squares

    targets = dict(targets or PAPER_FIG5_TARGETS)
    spread = spread or SpreadSpec(0.20)
    base_model = base_model or MarginModel()
    designs = {scheme: design_for_scheme(scheme) for scheme in targets}

    def model_for(p: Sequence[float]) -> MarginModel:
        return base_model.with_margins(_margins_from_exceedance(p, spread))

    def residuals(p: Sequence[float]) -> List[float]:
        model = model_for(p)
        return [
            analytic_p_zero(designs[scheme], model, spread, n_messages) - target
            for scheme, target in sorted(targets.items())
        ]

    x0 = [0.006, 0.0008, 0.0008, 0.0005]
    fit = least_squares(
        residuals, x0, bounds=([0.0] * 4, [0.05] * 4), xtol=1e-12, ftol=1e-12
    )
    if not fit.success:
        raise CalibrationError(f"margin calibration failed: {fit.message}")
    model = model_for(fit.x)
    achieved = {
        scheme: analytic_p_zero(designs[scheme], model, spread, n_messages)
        for scheme in targets
    }
    return model, achieved


def main() -> None:  # pragma: no cover - maintenance utility
    """Regenerate DEFAULT_MARGINS (prints the dict to paste)."""
    model, achieved = calibrate_margins()
    print("Calibrated margins (paste into repro/ppv/margins.py):")
    for name, margin in model.margins.items():
        print(f"    {name}: {margin:.5f}")
    print("Achieved analytic anchors vs. paper:")
    for scheme, value in sorted(achieved.items()):
        print(f"    {scheme:10s} {value:.4f}  (paper {PAPER_FIG5_TARGETS[scheme]:.3f})")


if __name__ == "__main__":  # pragma: no cover
    main()
