"""The Fig. 5 Monte-Carlo experiment.

Setup (paper, Fig. 5 caption and Section IV): 100 random 4-bit messages
are sent through each encoder under one sampled +/-20% PPV assignment;
the whole run is repeated 1000 times (1000 virtual chips), and the CDF
of the per-chip count N of erroneous decoded messages is reported.

The per-chip simulation itself lives in the runtime layer
(:mod:`repro.runtime`): this module translates a :class:`Fig5Config`
into per-scheme :class:`~repro.runtime.spec.ExperimentSpec`\\ s and runs
them on a :class:`~repro.runtime.engine.MonteCarloEngine` — inline by
default, sharded across worker processes (bit-identically) when the
caller passes an engine with ``jobs > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import CdfResult, empirical_cdf, summarize_counts
from repro.coding.registry import DISPLAY_NAMES, PAPER_SCHEMES
from repro.ppv.margins import MarginModel
from repro.ppv.spread import SpreadSpec
from repro.runtime import ExperimentSpec, MonteCarloEngine
from repro.utils.rng import RandomState, SeedPlan, spawn_generators


@dataclass(frozen=True)
class Fig5Config:
    """Parameters of the Fig. 5 experiment (paper defaults)."""

    schemes: Sequence[str] = tuple(PAPER_SCHEMES)
    n_chips: int = 1000
    n_messages: int = 100
    spread: SpreadSpec = field(default_factory=lambda: SpreadSpec(0.20))
    margin_model: Optional[MarginModel] = None
    decoder_strategy: Optional[str] = None
    seed: Optional[int] = 20250831  # arXiv date of the paper

    def __post_init__(self):
        if self.n_chips < 1 or self.n_messages < 1:
            raise ValueError("n_chips and n_messages must be positive")


@dataclass
class SchemeResult:
    """Per-scheme outcome: the counts behind one CDF curve of Fig. 5."""

    scheme: str
    display_name: str
    counts: np.ndarray  # (n_chips,) erroneous messages per chip
    n_messages: int

    @property
    def cdf(self) -> CdfResult:
        return empirical_cdf(self.counts, support_max=self.n_messages)

    @property
    def probability_zero_errors(self) -> float:
        """The paper's headline anchor P(N = 0)."""
        return float((self.counts == 0).mean())

    def summary(self) -> dict:
        return summarize_counts(self.counts)


@dataclass
class Fig5Result:
    """All scheme curves of one experiment run."""

    config: Fig5Config
    schemes: Dict[str, SchemeResult]

    def anchors(self) -> Dict[str, float]:
        """P(N = 0) per scheme, the numbers quoted in Section IV."""
        return {
            name: result.probability_zero_errors
            for name, result in self.schemes.items()
        }


def spec_for_scheme(
    scheme: str, config: Fig5Config, seed_plan: SeedPlan
) -> ExperimentSpec:
    """The runtime spec of one scheme's Fig. 5 population."""
    return ExperimentSpec(
        scheme=scheme,
        n_chips=config.n_chips,
        n_messages=config.n_messages,
        spread=config.spread,
        margin_model=config.margin_model or MarginModel(),
        seed_plan=seed_plan,
        decoder_strategy=None if scheme == "none" else config.decoder_strategy,
        label=scheme,
    )


def scheme_specs(config: Fig5Config) -> List[ExperimentSpec]:
    """One spec per scheme, seeded exactly as the sequential experiment.

    Each scheme's chip population derives from its own child stream of
    ``config.seed`` (one ``SeedSequence`` child per scheme, in scheme
    order), so adding or reordering *engine workers* — as opposed to
    schemes — can never move a chip onto different random draws.
    """
    streams = spawn_generators(config.seed, len(config.schemes))
    return [
        spec_for_scheme(scheme, config, SeedPlan.from_random_state(stream))
        for scheme, stream in zip(config.schemes, streams)
    ]


def _scheme_result(config: Fig5Config, scheme: str, counts: np.ndarray) -> SchemeResult:
    return SchemeResult(
        scheme=scheme,
        display_name=DISPLAY_NAMES.get(scheme, scheme),
        counts=counts,
        n_messages=config.n_messages,
    )


def run_scheme(
    scheme: str,
    config: Fig5Config,
    random_state: RandomState,
    engine: Optional[MonteCarloEngine] = None,
) -> SchemeResult:
    """Run the Monte-Carlo for one coding scheme."""
    spec = spec_for_scheme(scheme, config, SeedPlan.from_random_state(random_state))
    engine = engine or MonteCarloEngine()
    return _scheme_result(config, scheme, engine.run(spec).counts)


def run_fig5_experiment(
    config: Optional[Fig5Config] = None,
    engine: Optional[MonteCarloEngine] = None,
) -> Fig5Result:
    """Run the full Fig. 5 experiment (all schemes)."""
    config = config or Fig5Config()
    engine = engine or MonteCarloEngine()
    specs = scheme_specs(config)
    outcomes = engine.run_many(specs)
    results = {
        spec.scheme: _scheme_result(config, spec.scheme, outcome.counts)
        for spec, outcome in zip(specs, outcomes)
    }
    return Fig5Result(config=config, schemes=results)
