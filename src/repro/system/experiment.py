"""The Fig. 5 Monte-Carlo experiment.

Setup (paper, Fig. 5 caption and Section IV): 100 random 4-bit messages
are sent through each encoder under one sampled +/-20% PPV assignment;
the whole run is repeated 1000 times (1000 virtual chips), and the CDF
of the per-chip count N of erroneous decoded messages is reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import CdfResult, empirical_cdf, summarize_counts
from repro.coding.registry import DISPLAY_NAMES, PAPER_SCHEMES
from repro.encoders.designs import design_for_scheme
from repro.ppv.margins import MarginModel
from repro.ppv.montecarlo import ChipSampler
from repro.ppv.spread import SpreadSpec
from repro.system.datalink import CryogenicDataLink
from repro.utils.rng import RandomState, spawn_generators


@dataclass(frozen=True)
class Fig5Config:
    """Parameters of the Fig. 5 experiment (paper defaults)."""

    schemes: Sequence[str] = tuple(PAPER_SCHEMES)
    n_chips: int = 1000
    n_messages: int = 100
    spread: SpreadSpec = field(default_factory=lambda: SpreadSpec(0.20))
    margin_model: Optional[MarginModel] = None
    decoder_strategy: Optional[str] = None
    seed: Optional[int] = 20250831  # arXiv date of the paper

    def __post_init__(self):
        if self.n_chips < 1 or self.n_messages < 1:
            raise ValueError("n_chips and n_messages must be positive")


@dataclass
class SchemeResult:
    """Per-scheme outcome: the counts behind one CDF curve of Fig. 5."""

    scheme: str
    display_name: str
    counts: np.ndarray  # (n_chips,) erroneous messages per chip
    n_messages: int

    @property
    def cdf(self) -> CdfResult:
        return empirical_cdf(self.counts, support_max=self.n_messages)

    @property
    def probability_zero_errors(self) -> float:
        """The paper's headline anchor P(N = 0)."""
        return float((self.counts == 0).mean())

    def summary(self) -> dict:
        return summarize_counts(self.counts)


@dataclass
class Fig5Result:
    """All scheme curves of one experiment run."""

    config: Fig5Config
    schemes: Dict[str, SchemeResult]

    def anchors(self) -> Dict[str, float]:
        """P(N = 0) per scheme, the numbers quoted in Section IV."""
        return {
            name: result.probability_zero_errors
            for name, result in self.schemes.items()
        }


def run_scheme(
    scheme: str,
    config: Fig5Config,
    random_state: RandomState,
) -> SchemeResult:
    """Run the Monte-Carlo for one coding scheme."""
    design = design_for_scheme(scheme)
    link = CryogenicDataLink(
        design,
        decoder_strategy=None if design.code is None else config.decoder_strategy,
    )
    margin_model = config.margin_model or MarginModel()
    sampler = ChipSampler(design.netlist, config.spread, margin_model)
    counts = np.empty(config.n_chips, dtype=np.int64)
    k = link.message_bits
    for chip in sampler.sample(config.n_chips, random_state):
        messages = chip.rng.integers(0, 2, size=(config.n_messages, k)).astype(np.uint8)
        result = link.transmit(messages, chip.faults, chip.rng)
        counts[chip.index] = result.n_erroneous
    return SchemeResult(
        scheme=scheme,
        display_name=DISPLAY_NAMES.get(scheme, scheme),
        counts=counts,
        n_messages=config.n_messages,
    )


def run_fig5_experiment(config: Optional[Fig5Config] = None) -> Fig5Result:
    """Run the full Fig. 5 experiment (all schemes)."""
    config = config or Fig5Config()
    streams = spawn_generators(config.seed, len(config.schemes))
    results: Dict[str, SchemeResult] = {}
    for scheme, stream in zip(config.schemes, streams):
        results[scheme] = run_scheme(scheme, config, stream)
    return Fig5Result(config=config, schemes=results)
