"""Plain-text table rendering used by the experiment reports.

The benchmark harness prints the same rows the paper's tables report;
these helpers keep that output aligned and diff-friendly without pulling
in a formatting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    align: Optional[Sequence[str]] = None,
) -> str:
    """Render ``rows`` as an ASCII table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Iterable of rows; each row must have ``len(headers)`` entries.
    title:
        Optional title printed above the table.
    align:
        Optional per-column alignment: ``"l"`` (default) or ``"r"``.
    """
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns: {row}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    if align is None:
        align = ["l"] * len(headers)

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for cell, width, a in zip(cells, widths, align):
            parts.append(cell.rjust(width) if a == "r" else cell.ljust(width))
        return "| " + " | ".join(parts) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(headers))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    lines.append(sep)
    return "\n".join(lines)


def format_kv_block(items: Mapping[str, object], title: Optional[str] = None) -> str:
    """Render a key/value mapping as an aligned two-column block."""
    if not items:
        return title or ""
    width = max(len(k) for k in items)
    lines = [] if title is None else [title]
    for key, value in items.items():
        lines.append(f"  {key.ljust(width)} : {_cell(value)}")
    return "\n".join(lines)


def format_cdf_plot(
    series: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 20,
    x_label: str = "N",
    y_min: float = 0.75,
    y_max: float = 1.0,
) -> str:
    """Render one-or-more CDF series as a coarse ASCII plot.

    Each series is a sequence ``cdf[n] = P(X <= n)``; the x axis spans the
    longest series.  Used by the figure benchmarks to give a quick visual
    check next to the CSV dump.
    """
    if not series:
        return "(empty plot)"
    n_points = max(len(s) for s in series.values())
    if n_points < 2:
        return "(plot needs at least two points)"
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@%&"
    for idx, (name, values) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        for i, v in enumerate(values):
            x = int(round(i / (n_points - 1) * (width - 1)))
            frac = (float(v) - y_min) / (y_max - y_min)
            frac = min(max(frac, 0.0), 1.0)
            y = height - 1 - int(round(frac * (height - 1)))
            grid[y][x] = marker
    lines = []
    for r, row in enumerate(grid):
        frac = 1.0 - r / (height - 1)
        y_val = y_min + frac * (y_max - y_min)
        lines.append(f"{y_val:5.2f} |" + "".join(row))
    lines.append(" " * 6 + "+" + "-" * width)
    lines.append(" " * 6 + f"0 .. {n_points - 1}  ({x_label})")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)
