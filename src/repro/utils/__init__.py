"""Small shared utilities: RNG plumbing and ASCII table rendering."""

from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.tables import format_table, format_kv_block

__all__ = [
    "RandomState",
    "as_generator",
    "spawn_generators",
    "format_table",
    "format_kv_block",
]
