"""Seeded random-number-generator plumbing.

All stochastic code in :mod:`repro` accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy), and converts
it through :func:`as_generator`.  Experiments that need several
independent streams (e.g. one per Monte-Carlo chip) use
:func:`spawn_generators`, which derives child generators with NumPy's
``SeedSequence.spawn`` so results are reproducible regardless of
parallelisation order.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

#: Anything accepted where a random source is expected.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(random_state: RandomState = None) -> np.random.Generator:
    """Coerce ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` for fresh OS entropy, an ``int`` seed, an existing
        ``Generator`` (returned unchanged), or a ``SeedSequence``.

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    return np.random.default_rng(random_state)


def spawn_generators(random_state: RandomState, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    The derivation is deterministic for a given seed, so Monte-Carlo
    experiments remain reproducible even if chips are simulated out of
    order or in parallel.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(random_state, np.random.SeedSequence):
        seq = random_state
    elif isinstance(random_state, np.random.Generator):
        # Derive a seed sequence from the generator's own stream.
        seed = int(random_state.integers(0, 2**63 - 1))
        seq = np.random.SeedSequence(seed)
    else:
        seq = np.random.SeedSequence(random_state)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def sample_seeds(random_state: RandomState, count: int) -> List[int]:
    """Return ``count`` reproducible integer seeds."""
    rng = as_generator(random_state)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=count)]


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` lies in [0, 1] and return it as ``float``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def bernoulli_mask(
    rng: np.random.Generator, probability: float, shape: Union[int, Iterable[int]]
) -> np.ndarray:
    """Sample a boolean mask with independent ``P(True) = probability``."""
    check_probability(probability)
    if probability <= 0.0:
        return np.zeros(shape, dtype=bool)
    if probability >= 1.0:
        return np.ones(shape, dtype=bool)
    return rng.random(shape) < probability
