"""Seeded random-number-generator plumbing.

All stochastic code in :mod:`repro` accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy), and converts
it through :func:`as_generator`.  Experiments that need several
independent streams (e.g. one per Monte-Carlo chip) use
:func:`spawn_generators`, which derives child generators with NumPy's
``SeedSequence.spawn`` so results are reproducible regardless of
parallelisation order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

#: Anything accepted where a random source is expected.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(random_state: RandomState = None) -> np.random.Generator:
    """Coerce ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` for fresh OS entropy, an ``int`` seed, an existing
        ``Generator`` (returned unchanged), or a ``SeedSequence``.

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    return np.random.default_rng(random_state)


def spawn_generators(random_state: RandomState, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    The derivation is deterministic for a given seed, so Monte-Carlo
    experiments remain reproducible even if chips are simulated out of
    order or in parallel.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(random_state, np.random.SeedSequence):
        seq = random_state
    elif isinstance(random_state, np.random.Generator):
        # Derive a seed sequence from the generator's own stream.
        seed = int(random_state.integers(0, 2**63 - 1))
        seq = np.random.SeedSequence(seed)
    else:
        seq = np.random.SeedSequence(random_state)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


@dataclass(frozen=True)
class SeedPlan:
    """A serialisable recipe for the substreams of :func:`spawn_generators`.

    ``spawn_generators(rs, n)[i]`` derives child ``i`` as
    ``SeedSequence(entropy, spawn_key=parent_key + (i,))``.  A
    :class:`SeedPlan` captures ``(entropy, parent_key, offset)`` as plain
    integers, so any process — in particular a Monte-Carlo shard worker —
    can rebuild child ``i`` directly, without spawning the ``i - 1``
    siblings before it and without shipping generator objects across
    process boundaries.  ``SeedPlan.from_random_state(rs).generators(0, n)``
    is bit-identical to ``spawn_generators(rs, n)``.
    """

    entropy: Union[int, Tuple[int, ...]]
    spawn_key: Tuple[int, ...] = ()
    child_offset: int = 0

    @classmethod
    def from_random_state(cls, random_state: RandomState) -> "SeedPlan":
        """Capture the child derivation ``spawn_generators`` would use.

        A ``Generator`` input is consumed exactly as ``spawn_generators``
        consumes it (one 63-bit draw); ``None`` snapshots fresh OS
        entropy, so the plan itself stays reproducible once built.
        """
        if isinstance(random_state, SeedPlan):
            return random_state
        if isinstance(random_state, np.random.Generator):
            return cls(entropy=int(random_state.integers(0, 2**63 - 1)))
        if isinstance(random_state, np.random.SeedSequence):
            entropy = random_state.entropy
            if not isinstance(entropy, int):
                entropy = tuple(int(word) for word in np.atleast_1d(entropy))
            return cls(
                entropy=entropy,
                spawn_key=tuple(int(k) for k in random_state.spawn_key),
                child_offset=int(random_state.n_children_spawned),
            )
        if random_state is None:
            return cls(entropy=int(np.random.SeedSequence().entropy))
        return cls(entropy=int(random_state))

    def child_sequence(self, index: int) -> np.random.SeedSequence:
        """The ``index``-th child seed sequence of the plan."""
        if index < 0:
            raise ValueError(f"child index must be non-negative, got {index}")
        entropy = self.entropy if isinstance(self.entropy, int) else list(self.entropy)
        return np.random.SeedSequence(
            entropy=entropy,
            spawn_key=tuple(self.spawn_key) + (self.child_offset + index,),
        )

    def generators(self, start: int, stop: int) -> List[np.random.Generator]:
        """Child generators ``[start, stop)`` — a slice of the spawn."""
        return [
            np.random.default_rng(self.child_sequence(i)) for i in range(start, stop)
        ]

    def to_dict(self) -> dict:
        entropy = self.entropy
        return {
            "entropy": entropy if isinstance(entropy, int) else list(entropy),
            "spawn_key": list(self.spawn_key),
            "child_offset": self.child_offset,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SeedPlan":
        entropy = payload["entropy"]
        if not isinstance(entropy, int):
            entropy = tuple(int(word) for word in entropy)
        return cls(
            entropy=entropy,
            spawn_key=tuple(int(k) for k in payload.get("spawn_key", ())),
            child_offset=int(payload.get("child_offset", 0)),
        )


def sample_seeds(random_state: RandomState, count: int) -> List[int]:
    """Return ``count`` reproducible integer seeds."""
    rng = as_generator(random_state)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=count)]


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` lies in [0, 1] and return it as ``float``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def bernoulli_mask(
    rng: np.random.Generator, probability: float, shape: Union[int, Iterable[int]]
) -> np.ndarray:
    """Sample a boolean mask with independent ``P(True) = probability``."""
    check_probability(probability)
    if probability <= 0.0:
        return np.zeros(shape, dtype=bool)
    if probability >= 1.0:
        return np.ones(shape, dtype=bool)
    return rng.random(shape) < probability
