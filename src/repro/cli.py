"""Command-line entry points: regenerate every paper artefact.

``repro table1|table2|fig3|fig5|ablations`` (or the per-experiment
console scripts) print the same rows/series the paper reports; ``--csv``
additionally writes machine-readable curves next to the report.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1, with a clean parser error."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type: an integer >= 0, with a clean parser error."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value}"
        )
    return value


def _port_number(text: str) -> int:
    """argparse type: a TCP port in [0, 65535] (0 = pick a free port)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(f"expected a port in [0, 65535], got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    """argparse type: a float >= 0, with a clean parser error."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative number, got {value}")
    return value


def _burst_length(text: str) -> float:
    """argparse type: a mean burst length in bits, >= 1."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value < 1.0:
        raise argparse.ArgumentTypeError(
            f"expected a mean burst length >= 1 bit, got {value}"
        )
    return value


def _burst_density(text: str) -> float:
    """argparse type: a stationary bad-state fraction in [0, 1)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not 0.0 <= value < 1.0:
        raise argparse.ArgumentTypeError(
            f"expected a burst density in [0, 1), got {value}"
        )
    return value


def _spread_fraction(text: str) -> float:
    """argparse type: a fractional spread in [0, 1]."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"expected a spread fraction in [0, 1] (0.20 = +/-20%), got {value}"
        )
    return value


def _add_runtime_args(parser: argparse.ArgumentParser) -> None:
    """``--jobs`` / ``--cache-dir`` / ``--no-cache`` for engine-backed commands."""
    group = parser.add_argument_group("runtime")
    group.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for the Monte-Carlo (1 = inline; results are "
             "bit-identical for any value)",
    )
    group.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="result-cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk result cache",
    )


def _engine_from_args(args):
    from repro.runtime import MonteCarloEngine, ResultCache, ThroughputReporter

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return MonteCarloEngine(
        jobs=args.jobs, cache=cache, progress=ThroughputReporter()
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Lightweight Error-Correction Code Encoders in "
            "Superconducting Electronic Systems' (SOCC 2025)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I: detected/corrected error capabilities")
    sub.add_parser("table2", help="Table II: circuit-level encoder comparison")

    fig3 = sub.add_parser("fig3", help="Fig. 3: Hamming(8,4) waveforms at 5 GHz")
    fig3.add_argument("--frequency", type=float, default=5.0, metavar="GHZ")
    fig3.add_argument("--message", action="append", default=None,
                      help="4-bit message(s), e.g. --message 1011 (repeatable)")
    fig3.add_argument("--csv", metavar="PATH", default=None,
                      help="write the voltage traces as CSV")

    fig5 = sub.add_parser("fig5", help="Fig. 5: PPV Monte-Carlo CDF")
    fig5.add_argument("--chips", type=_positive_int, default=1000)
    fig5.add_argument("--messages", type=_positive_int, default=100)
    fig5.add_argument("--spread", type=_spread_fraction, default=0.20)
    fig5.add_argument("--seed", type=int, default=20250831)
    fig5.add_argument("--csv", metavar="PATH", default=None,
                      help="write the CDF curves as CSV")
    _add_runtime_args(fig5)

    abl = sub.add_parser("ablations", help="spread/decoder/frequency/code-cost studies")
    abl.add_argument("--chips", type=_positive_int, default=400)
    abl.add_argument("--seed", type=int, default=7)
    _add_runtime_args(abl)

    soft = sub.add_parser(
        "soft-gain",
        help="hard-vs-soft residual BER per registry code under AWGN",
    )
    soft.add_argument("--chips", type=_positive_int, default=200)
    soft.add_argument("--messages", type=_positive_int, default=256,
                      help="frames per chip")
    soft.add_argument("--sigmas", type=_nonnegative_float, nargs="+", default=None,
                      metavar="SIGMA",
                      help="noise RMS values as fractions of the flux eye "
                           "(default: 0.2 0.3 0.4 0.5 0.6)")
    soft.add_argument("--codes", nargs="+", default=None,
                      choices=["rm13", "hamming74", "hamming84"],
                      help="subset of registry codes (default: all)")
    soft.add_argument("--seed", type=int, default=20250831)
    soft.add_argument("--csv", metavar="PATH", default=None,
                      help="write the hard/soft BER curves as CSV")
    _add_runtime_args(soft)

    burst = sub.add_parser(
        "burst",
        help="interleaved-vs-bare residual BER on a Gilbert-Elliott burst channel",
    )
    burst.add_argument("--code", default="hamming74",
                       choices=["rm13", "hamming74", "hamming84"],
                       help="base code of both arms (default: hamming74)")
    burst.add_argument("--depth", type=_positive_int, default=8,
                       help="interleaving depth (constituent words per window)")
    burst.add_argument("--burst-lens", type=_burst_length, nargs="+",
                       default=None, metavar="BITS",
                       help="mean burst lengths in bits, each >= 1 "
                            "(default: 2 4 6 8)")
    burst.add_argument("--density", type=_burst_density, default=0.10,
                       help="stationary bad-state probability (default: 0.10)")
    burst.add_argument("--p-bad", type=_spread_fraction, default=0.5,
                       help="flip probability inside a burst (default: 0.5)")
    burst.add_argument("--p-good", type=_spread_fraction, default=0.0,
                       help="flip probability outside bursts (default: 0)")
    burst.add_argument("--chips", type=_positive_int, default=100)
    burst.add_argument("--messages", type=_positive_int, default=48,
                       help="channel windows (interleaved words) per chip")
    burst.add_argument("--seed", type=int, default=20250831)
    burst.add_argument("--csv", metavar="PATH", default=None,
                       help="write the bare/interleaved BER curves as CSV")
    _add_runtime_args(burst)

    memory = sub.add_parser(
        "memory",
        help="scrubbed-vs-unscrubbed ECC-memory retention word-error rates",
    )
    memory.add_argument("--codes", nargs="+", default=None,
                        choices=["rm13", "hamming74", "hamming84"],
                        help="subset of registry codes (default: all)")
    memory.add_argument("--rots", type=_spread_fraction, nargs="+", default=None,
                        metavar="RATE",
                        help="per-bit rot probabilities per sweep interval "
                             "(default: 0.001 0.003 0.01 0.03)")
    memory.add_argument("--lines", type=_positive_int, default=64,
                        help="memory lines per chip (default: 64)")
    memory.add_argument("--sweeps", type=_positive_int, default=16,
                        help="rot intervals between write and final read "
                             "(default: 16)")
    memory.add_argument("--chips", type=_positive_int, default=200)
    memory.add_argument("--seed", type=int, default=20250831)
    memory.add_argument("--csv", metavar="PATH", default=None,
                        help="write the retention WER curves as CSV")
    _add_runtime_args(memory)

    josim = sub.add_parser("export-josim", help="emit a JoSIM deck for an encoder")
    josim.add_argument("scheme", choices=["rm13", "hamming74", "hamming84", "none"])
    josim.add_argument("--spread", type=float, default=0.0)
    josim.add_argument("--output", metavar="PATH", default=None)

    sub.add_parser(
        "codes",
        help="list the registered codes/decoders (valid service session configs)",
    )

    sub.add_parser(
        "backends",
        help="list the kernel backends: availability, probe result, default",
    )

    serve = sub.add_parser(
        "serve", help="run the streaming codec service (micro-batched encode/decode)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=_port_number, default=7350,
                       help="TCP port (0 picks a free port; default 7350)")
    serve.add_argument("--max-batch", type=_positive_int, default=256, metavar="FRAMES",
                       help="flush a lane once this many frames are queued")
    serve.add_argument("--max-delay-us", type=_nonnegative_float, default=200.0,
                       metavar="US",
                       help="deadline flush: max queueing delay for the oldest frame")
    serve.add_argument("--max-pending", type=_positive_int, default=8192,
                       metavar="FRAMES",
                       help="backpressure bound on queued frames per lane")
    serve.add_argument("--workers", type=_nonnegative_int, default=0, metavar="N",
                       help="decode worker processes (0 = in-process on one "
                            "core); sessions are consistent-hash routed and "
                            "each worker micro-batches independently")
    serve.add_argument("--backend", default=None, metavar="NAME",
                       help="kernel backend for all decoding (exported as "
                            "REPRO_BACKEND so pool workers inherit it; "
                            "default: auto-selected, see 'repro backends')")
    serve.add_argument("--trace", default=None, metavar="FILE",
                       help="append sampled request traces to FILE as JSONL "
                            "(exported as REPRO_TRACE_FILE so pool workers "
                            "share the sink); inspect with 'repro trace'")
    serve.add_argument("--trace-sample", type=_nonnegative_float, default=None,
                       metavar="FRAC",
                       help="fraction of requests to trace, 0..1 "
                            "(default 1.0; only meaningful with --trace)")
    serve.add_argument("--profile-kernels", action="store_true",
                       help="time every backend kernel call into the "
                            "repro_kernel_time_us histogram (exported as "
                            "REPRO_PROFILE_KERNELS; scrape with 'repro metrics')")
    serve.add_argument("--stream-deadline-us", type=_nonnegative_float,
                       default=None, metavar="US",
                       help="default decision deadline for streaming sessions: "
                            "codewords still open this long after their frame "
                            "arrived are forced to best-effort decisions "
                            "(sessions may override; default: no deadline)")

    metrics = sub.add_parser(
        "metrics",
        help="scrape a running codec service's metrics (Prometheus text format)",
    )
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument("--port", type=_port_number, default=7350)

    trace = sub.add_parser(
        "trace",
        help="inspect a JSONL trace file written by 'serve --trace'",
    )
    trace.add_argument("action", choices=["tail", "summarize"],
                       help="tail: print the last events; summarize: per-span "
                            "count/p50/p99/max table")
    trace.add_argument("file", metavar="FILE", help="the JSONL trace file")
    trace.add_argument("--count", type=_positive_int, default=20,
                       help="events shown by 'tail' (default 20)")

    admin = sub.add_parser(
        "admin",
        help="inspect or drain/restart the workers of a running codec service",
    )
    admin.add_argument("action", choices=["status", "restart", "kill"],
                       help="status: pool summary; restart: graceful drain + "
                            "respawn (no lost sessions/requests); kill: "
                            "SIGKILL the worker (crash-recovery drill)")
    admin.add_argument("--host", default="127.0.0.1")
    admin.add_argument("--port", type=_port_number, default=7350)
    admin.add_argument("--worker", type=_nonnegative_int, default=None,
                       metavar="INDEX",
                       help="target worker index (required for restart/kill)")
    admin.add_argument("--json", action="store_true",
                       help="emit the server's response as JSON")

    loadgen = sub.add_parser(
        "loadgen", help="drive a traffic scenario against a running codec service"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=_port_number, default=7350)
    loadgen.add_argument("--scenario", default="steady",
                         choices=["steady", "bursty", "mixed", "adversarial",
                                  "burst", "stream", "memory"])
    loadgen.add_argument("--clients", type=_positive_int, default=16)
    loadgen.add_argument("--connections", type=_positive_int, default=None,
                         metavar="N",
                         help="TCP connections shared by the clients (default: "
                              "one per client); lets 512-4096 client drills "
                              "stay under the fd limit")
    loadgen.add_argument("--requests", type=_positive_int, default=50,
                         help="encode->decode round trips per client")
    loadgen.add_argument("--frames", type=_positive_int, default=4,
                         help="frames per request")
    loadgen.add_argument("--seed", type=_nonnegative_int, default=0,
                         help="seed of the clients' message streams")
    loadgen.add_argument("--code", default="hamming84",
                         help="code for single-code scenarios (ignored by 'mixed')")
    loadgen.add_argument("--decoder", default=None,
                         help="decoder strategy (default: the paper's pairing)")
    loadgen.add_argument("--soft", action="store_true",
                         help="decode through the float soft lane (LLR frames) "
                              "instead of the hard bit lane")
    loadgen.add_argument("--soft-sigma", type=_nonnegative_float, default=0.0,
                         metavar="SIGMA",
                         help="Gaussian jitter RMS added to the soft "
                              "confidences (only with --soft)")
    # Defaults are applied in the handler so passing any of these with
    # a non-burst scenario can be detected and rejected (mirroring the
    # --soft-sigma-without---soft guard).
    loadgen.add_argument("--burst-len", type=_burst_length, default=None,
                         metavar="BITS",
                         help="mean burst length of the 'burst' scenario's "
                              "Gilbert-Elliott corruption, >= 1 (default: 4)")
    loadgen.add_argument("--burst-density", type=_burst_density, default=None,
                         metavar="FRAC",
                         help="stationary bad-state probability of the "
                              "'burst' scenario (default: 0.10)")
    loadgen.add_argument("--burst-depth", type=_positive_int, default=None,
                         metavar="D",
                         help="interleaving depth of the 'burst' scenario's "
                              "interleaved lane (default: 8)")
    loadgen.add_argument("--stream-depth", type=_positive_int, default=None,
                         metavar="D",
                         help="convolutional interleaving depth of the "
                              "'stream' scenario (default: 4)")
    loadgen.add_argument("--stream-shift", type=_positive_int, default=None,
                         metavar="S",
                         help="per-class frame shift of the 'stream' scenario "
                              "(default: 1)")
    loadgen.add_argument("--stream-deadline-us", type=_nonnegative_float,
                         default=None, metavar="US",
                         help="per-session decision deadline of the 'stream' "
                              "scenario (default: none — pure pipelined "
                              "decode, zero misses expected)")
    loadgen.add_argument("--stream-interval-us", type=_nonnegative_float,
                         default=None, metavar="US",
                         help="pacing between the 'stream' scenario's pushes "
                              "(default: back to back); pacing past the "
                              "deadline deterministically drills the "
                              "forced-decision path")
    loadgen.add_argument("--memory-lines", type=_positive_int, default=None,
                         metavar="LINES",
                         help="addressable lines per session of the 'memory' "
                              "scenario (default: 64)")
    loadgen.add_argument("--memory-rot", type=_spread_fraction, default=None,
                         metavar="RATE",
                         help="per-bit retention-rot probability the 'memory' "
                              "scenario's scrub steps inject (default: 0 — any "
                              "residual read is then a service bug)")
    loadgen.add_argument("--hot-fraction", type=_spread_fraction, default=None,
                         metavar="FRAC",
                         help="fraction of 'memory' scenario transactions "
                              "aimed at the hot eighth of the address space "
                              "(default: 0.8)")
    loadgen.add_argument("--scrub-every", type=_positive_int, default=None,
                         metavar="ROUNDS",
                         help="'memory' scenario scrub cadence: one scrub step "
                              "per this many traffic rounds (default: 4)")
    loadgen.add_argument("--scrub-lines", type=_positive_int, default=None,
                         metavar="LINES",
                         help="lines swept per 'memory' scenario scrub step "
                              "(default: 8)")
    loadgen.add_argument("--json", action="store_true",
                         help="emit the full report (incl. server stats) as JSON")
    loadgen.add_argument("--assert-zero-residual", action="store_true",
                         help="exit 1 if any frame came back wrong "
                              "(only meaningful for injection-free scenarios)")

    report = sub.add_parser(
        "report", help="regenerate every artefact into a directory"
    )
    report.add_argument("--output", metavar="DIR", default="artifacts")
    report.add_argument("--chips", type=_positive_int, default=1000)
    report.add_argument("--seed", type=int, default=20250831)
    report.add_argument("--no-ablations", action="store_true")
    _add_runtime_args(report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "table1":
        from repro.experiments import table1

        print(table1.render(table1.run()))
    elif args.command == "table2":
        from repro.experiments import table2

        print(table2.render(table2.run()))
    elif args.command == "fig3":
        from repro.experiments import fig3

        result = fig3.run(messages=args.message, frequency_ghz=args.frequency)
        print(fig3.render(result))
        if args.csv:
            with open(args.csv, "w") as handle:
                handle.write(result.waveforms.to_csv())
            print(f"voltage traces written to {args.csv}")
    elif args.command == "fig5":
        from repro.experiments import fig5
        from repro.ppv.spread import SpreadSpec
        from repro.system.experiment import Fig5Config

        config = Fig5Config(
            n_chips=args.chips,
            n_messages=args.messages,
            spread=SpreadSpec(args.spread),
            seed=args.seed,
        )
        report = fig5.run(config, engine=_engine_from_args(args))
        print(fig5.render(report))
        if args.csv:
            with open(args.csv, "w") as handle:
                handle.write(fig5.cdf_csv(report, max_n=args.messages))
            print(f"CDF curves written to {args.csv}")
    elif args.command == "ablations":
        from repro.experiments import ablations

        result = ablations.run(
            n_chips=args.chips, seed=args.seed, engine=_engine_from_args(args)
        )
        print(ablations.render(result))
    elif args.command == "soft-gain":
        from repro.experiments import soft_gain

        config_kwargs = dict(
            n_chips=args.chips, n_messages=args.messages, seed=args.seed
        )
        if args.sigmas is not None:
            config_kwargs["sigmas"] = tuple(args.sigmas)
        if args.codes is not None:
            config_kwargs["codes"] = tuple(args.codes)
        result = soft_gain.run(
            soft_gain.SoftGainConfig(**config_kwargs),
            engine=_engine_from_args(args),
        )
        print(soft_gain.render(result))
        if args.csv:
            with open(args.csv, "w") as handle:
                handle.write(soft_gain.curves_csv(result))
            print(f"BER curves written to {args.csv}")
    elif args.command == "burst":
        from repro.experiments import burst as burst_mod
        from repro.link.burst import GilbertElliottChannel

        # Flags are valid individually but can be jointly unreachable
        # (short bursts at high density need p_g2b > 1); fail at the
        # CLI, not inside a Monte-Carlo worker.
        lens = (
            tuple(args.burst_lens)
            if args.burst_lens is not None
            else burst_mod.DEFAULT_BURST_LENS
        )
        for burst_len in lens:
            try:
                GilbertElliottChannel.from_burst_profile(
                    burst_len, args.density, p_bad=args.p_bad, p_good=args.p_good
                )
            except ValueError as exc:
                print(f"repro burst: error: {exc}", file=sys.stderr)
                return 2

        config_kwargs = dict(
            code=args.code,
            depth=args.depth,
            density=args.density,
            p_bad=args.p_bad,
            p_good=args.p_good,
            n_chips=args.chips,
            n_messages=args.messages,
            seed=args.seed,
        )
        if args.burst_lens is not None:
            config_kwargs["burst_lens"] = tuple(args.burst_lens)
        result = burst_mod.run(
            burst_mod.BurstResilienceConfig(**config_kwargs),
            engine=_engine_from_args(args),
        )
        print(burst_mod.render(result))
        if args.csv:
            with open(args.csv, "w") as handle:
                handle.write(burst_mod.curves_csv(result))
            print(f"BER curves written to {args.csv}")
    elif args.command == "memory":
        from repro.experiments import retention

        config_kwargs = dict(
            lines=args.lines, sweeps=args.sweeps, n_chips=args.chips,
            seed=args.seed,
        )
        if args.codes is not None:
            config_kwargs["codes"] = tuple(args.codes)
        if args.rots is not None:
            config_kwargs["rots"] = tuple(args.rots)
        result = retention.run(
            retention.RetentionConfig(**config_kwargs),
            engine=_engine_from_args(args),
        )
        print(retention.render(result))
        if args.csv:
            with open(args.csv, "w") as handle:
                handle.write(retention.curves_csv(result))
            print(f"retention WER curves written to {args.csv}")
    elif args.command == "export-josim":
        from repro.encoders.designs import design_for_scheme
        from repro.sfq.josim import export_josim_deck

        deck = export_josim_deck(
            design_for_scheme(args.scheme).netlist, spread=args.spread
        )
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(deck)
            print(f"JoSIM deck written to {args.output}")
        else:
            print(deck)
    elif args.command == "codes":
        from repro.service.session import catalog

        listing = catalog()
        header = (
            f"{'name':<12} {'display':<14} {'(n, k)':<8} {'rate':>6} "
            f"{'d_min':>5}  {'default decoder'}"
        )
        print(header)
        print("-" * len(header))
        for entry in listing["codes"]:
            print(
                f"{entry['name']:<12} {entry['display_name']:<14} "
                f"({entry['n']}, {entry['k']})".ljust(37)
                + f"{entry['rate']:>6.3f} {entry['d_min']:>5}  "
                + entry["default_decoder"]
            )
        print(f"\ndecoder strategies: {', '.join(listing['decoders'])}")
    elif args.command == "backends":
        from repro.backends import probe

        header = f"{'name':<8} {'priority':>8}  {'status':<12} {'summary'}"
        print(header)
        print("-" * len(header))
        for entry in probe():
            status = "available" if entry["available"] else "unavailable"
            if entry["default"]:
                status += " *"
            line = (
                f"{entry['name']:<8} {entry['priority']:>8}  {status:<12} "
                f"{entry['summary']}"
            )
            print(line)
            if entry["reason"]:
                print(f"{'':19}({entry['reason']})")
        print("\n* = default for unqualified kernel calls "
              "(override with REPRO_BACKEND or backend=)")
    elif args.command == "serve":
        import asyncio
        import os as _os

        from repro.service import BatchPolicy, CodecServer

        if args.max_pending < args.max_batch:
            print(
                f"repro serve: error: --max-pending ({args.max_pending}) must be "
                f">= --max-batch ({args.max_batch})",
                file=sys.stderr,
            )
            return 2

        if args.backend is not None:
            from repro.backends import (
                BACKEND_ENV_VAR,
                resolve_backend,
                set_default_backend,
            )
            from repro.errors import BackendError

            try:
                backend_name = resolve_backend(args.backend).name
            except BackendError as exc:
                print(f"repro serve: error: {exc}", file=sys.stderr)
                return 2
            # The env var is the cross-process channel: pool workers are
            # forked/spawned after this point and re-resolve it there.
            _os.environ[BACKEND_ENV_VAR] = backend_name
            set_default_backend(backend_name)

        if args.trace_sample is not None and args.trace is None:
            print(
                "repro serve: error: --trace-sample only makes sense with --trace",
                file=sys.stderr,
            )
            return 2
        if args.trace is not None:
            from repro.obs.tracing import (
                TRACE_FILE_ENV,
                TRACE_SAMPLE_ENV,
                reset_tracer,
            )

            # Env vars again: the front reads them on first use and pool
            # workers inherit them through the fork.
            _os.environ[TRACE_FILE_ENV] = args.trace
            if args.trace_sample is not None:
                _os.environ[TRACE_SAMPLE_ENV] = str(args.trace_sample)
            reset_tracer()
        if args.profile_kernels:
            from repro.obs.profiling import PROFILE_ENV

            _os.environ[PROFILE_ENV] = "1"

        async def _serve() -> None:
            server = CodecServer(
                host=args.host,
                port=args.port,
                policy=BatchPolicy(
                    max_batch=args.max_batch,
                    max_delay_us=args.max_delay_us,
                    max_pending_frames=args.max_pending,
                ),
                workers=args.workers,
                stream_deadline_us=args.stream_deadline_us,
            )
            await server.start()
            print(f"serving codec sessions on {args.host}:{server.port}", flush=True)
            print(
                f"  policy: max_batch={args.max_batch} "
                f"max_delay_us={args.max_delay_us:g} "
                f"max_pending={args.max_pending}",
                flush=True,
            )
            if args.workers:
                print(
                    f"  decode workers: {args.workers} process(es), consistent-hash "
                    "session routing ('repro admin' drives drain/restart)",
                    flush=True,
                )
            if args.backend is not None:
                print(f"  kernel backend: {args.backend}", flush=True)
            if args.trace is not None:
                sample = args.trace_sample if args.trace_sample is not None else 1.0
                print(
                    f"  tracing: {args.trace} (sample={sample:g}, "
                    "'repro trace' inspects it)",
                    flush=True,
                )
            if args.profile_kernels:
                print("  kernel profiling: on (see 'repro metrics')", flush=True)
            if args.stream_deadline_us is not None:
                print(
                    f"  stream deadline: {args.stream_deadline_us:g} us "
                    "(late windows forced to best-effort decisions)",
                    flush=True,
                )
            try:
                await server.serve_forever()
            finally:
                await server.stop()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            print("codec service stopped")
        except OSError as exc:
            print(
                f"repro serve: error: cannot bind {args.host}:{args.port} ({exc})",
                file=sys.stderr,
            )
            return 1
    elif args.command == "metrics":
        import asyncio

        from repro.service import CodecClient, ProtocolError

        async def _metrics() -> str:
            client = await CodecClient.connect(args.host, args.port)
            try:
                return await client.metrics()
            finally:
                await client.close()

        try:
            text = asyncio.run(_metrics())
        except OSError as exc:
            print(
                f"repro metrics: error: cannot reach a codec service at "
                f"{args.host}:{args.port} ({exc}); start one with 'repro serve'",
                file=sys.stderr,
            )
            return 1
        except ProtocolError as exc:
            print(f"repro metrics: error: {exc}", file=sys.stderr)
            return 1
        print(text, end="")
    elif args.command == "trace":
        import json as _json

        from repro.obs.tracing import read_events, summarize_events, tail_events

        try:
            if args.action == "tail":
                for event in tail_events(args.file, args.count):
                    print(_json.dumps(event, sort_keys=True))
            else:
                summary = summarize_events(read_events(args.file))
                if not summary:
                    print("no trace events found")
                else:
                    print(
                        f"{'span':<20} {'count':>8} {'traces':>8} "
                        f"{'p50_us':>10} {'p99_us':>10} {'max_us':>12}"
                    )
                    for span, row in summary.items():
                        print(
                            f"{span:<20} {row['count']:>8} {row['traces']:>8} "
                            f"{row['p50_us']:>10g} {row['p99_us']:>10g} "
                            f"{row['max_us']:>12g}"
                        )
        except OSError as exc:
            print(f"repro trace: error: cannot read {args.file}: {exc}",
                  file=sys.stderr)
            return 1
    elif args.command == "admin":
        import asyncio
        import json as _json

        from repro.service import CodecClient, ProtocolError

        if args.action in ("restart", "kill") and args.worker is None:
            print(
                f"repro admin: error: {args.action} needs --worker INDEX",
                file=sys.stderr,
            )
            return 2

        async def _admin():
            client = await CodecClient.connect(args.host, args.port)
            try:
                return await client.admin(args.action, worker=args.worker)
            finally:
                await client.close()

        try:
            result = asyncio.run(_admin())
        except OSError as exc:
            print(
                f"repro admin: error: cannot reach a codec service at "
                f"{args.host}:{args.port} ({exc}); start one with 'repro serve'",
                file=sys.stderr,
            )
            return 1
        except ProtocolError as exc:
            print(f"repro admin: error: {exc}", file=sys.stderr)
            return 1
        if args.json:
            print(_json.dumps(result, indent=2, sort_keys=True))
        elif args.action == "status":
            print(f"mode: {result.get('mode')}  sessions: {result.get('sessions')}")
            for worker in result.get("workers", []):
                state = "ready" if worker.get("ready") else "down"
                print(
                    f"  worker {worker['index']}: pid={worker.get('pid')} "
                    f"{state} restarts={worker.get('restarts')} "
                    f"sessions={worker.get('sessions')}"
                )
        else:
            print(_json.dumps(result, sort_keys=True))
    elif args.command == "loadgen":
        import asyncio
        import json as _json

        from repro.service import loadgen as loadgen_mod

        if args.soft_sigma > 0 and not args.soft:
            print(
                "repro loadgen: error: --soft-sigma only makes sense with --soft",
                file=sys.stderr,
            )
            return 2

        burst_flags = (args.burst_len, args.burst_density, args.burst_depth)
        if args.scenario != "burst" and any(v is not None for v in burst_flags):
            print(
                "repro loadgen: error: --burst-len/--burst-density/--burst-depth "
                "only make sense with --scenario burst (the 'bursty' scenario's "
                "request bursts are shaped by the scenario itself)",
                file=sys.stderr,
            )
            return 2
        stream_flags = (
            args.stream_depth, args.stream_shift, args.stream_deadline_us,
            args.stream_interval_us,
        )
        if args.scenario != "stream" and any(v is not None for v in stream_flags):
            print(
                "repro loadgen: error: --stream-depth/--stream-shift/"
                "--stream-deadline-us/--stream-interval-us only make sense "
                "with --scenario stream",
                file=sys.stderr,
            )
            return 2
        memory_flags = (
            args.memory_lines, args.memory_rot, args.hot_fraction,
            args.scrub_every, args.scrub_lines,
        )
        if args.scenario != "memory" and any(v is not None for v in memory_flags):
            print(
                "repro loadgen: error: --memory-lines/--memory-rot/"
                "--hot-fraction/--scrub-every/--scrub-lines only make sense "
                "with --scenario memory",
                file=sys.stderr,
            )
            return 2
        scenario_kwargs = dict(code=args.code, decoder=args.decoder)
        if args.scenario == "burst":
            scenario_kwargs.update(
                burst_len=args.burst_len if args.burst_len is not None else 4.0,
                density=(
                    args.burst_density if args.burst_density is not None else 0.10
                ),
                depth=args.burst_depth if args.burst_depth is not None else 8,
            )
        if args.scenario == "stream":
            scenario_kwargs.update(
                depth=args.stream_depth if args.stream_depth is not None else 4,
                shift=args.stream_shift if args.stream_shift is not None else 1,
                deadline_us=args.stream_deadline_us,
                interval_us=args.stream_interval_us,
            )
        if args.scenario == "memory":
            scenario_kwargs.update(
                lines=args.memory_lines if args.memory_lines is not None else 64,
                rot=args.memory_rot if args.memory_rot is not None else 0.0,
                hot_fraction=(
                    args.hot_fraction if args.hot_fraction is not None else 0.8
                ),
                scrub_every=args.scrub_every if args.scrub_every is not None else 4,
                scrub_lines=args.scrub_lines if args.scrub_lines is not None else 8,
            )
        try:
            scenario = loadgen_mod.make_scenario(args.scenario, **scenario_kwargs)
        except ValueError as exc:
            # Jointly-invalid burst parameters or an unsupported
            # flag/scenario combination; surface as a clean CLI error.
            print(f"repro loadgen: error: {exc}", file=sys.stderr)
            return 2
        try:
            report_ = asyncio.run(
                loadgen_mod.run_scenario(
                    args.host,
                    args.port,
                    scenario,
                    clients=args.clients,
                    connections=args.connections,
                    requests=args.requests,
                    frames_per_request=args.frames,
                    seed=args.seed,
                    soft=args.soft,
                    soft_sigma=args.soft_sigma,
                )
            )
        except OSError as exc:
            print(
                f"repro loadgen: error: cannot reach a codec service at "
                f"{args.host}:{args.port} ({exc}); start one with 'repro serve'",
                file=sys.stderr,
            )
            return 1
        if args.json:
            print(_json.dumps(report_.to_dict(), indent=2, sort_keys=True))
        else:
            print(loadgen_mod.render(report_))
            print("server stats: " + _json.dumps(report_.server_stats, sort_keys=True))
        if args.assert_zero_residual and (
            report_.residual_frames or report_.client_errors
        ):
            print(
                f"FAIL: {report_.residual_frames} residual frame(s), "
                f"{len(report_.client_errors)} failed client(s) "
                "on a zero-noise run",
                file=sys.stderr,
            )
            return 1
    elif args.command == "report":
        from repro.experiments.report import generate_full_report

        manifest = generate_full_report(
            args.output,
            n_chips=args.chips,
            seed=args.seed,
            include_ablations=not args.no_ablations,
            engine=_engine_from_args(args),
        )
        print(f"artefacts written to {manifest.output_dir}/")
        for name, ok in manifest.checks.items():
            print(f"  {name}: {'PASS' if ok else 'FAIL'}")
        if not manifest.all_checks_pass:
            return 1
    return 0


def _single(command: str) -> int:
    return main([command] + sys.argv[1:])


def main_table1() -> int:
    return _single("table1")


def main_table2() -> int:
    return _single("table2")


def main_fig3() -> int:
    return _single("fig3")


def main_fig5() -> int:
    return _single("fig5")


def main_ablations() -> int:
    return _single("ablations")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
