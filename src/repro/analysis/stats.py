"""Statistics for Monte-Carlo experiment reporting.

The paper's Fig. 5 is an empirical CDF over 1000 chips; these helpers
compute the CDF plus uncertainty measures (Wilson binomial intervals for
the P(N = 0) anchors, bootstrap intervals for arbitrary statistics) so
EXPERIMENTS.md can report paper-vs-measured with error bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.utils.rng import RandomState, as_generator


@dataclass(frozen=True)
class CdfResult:
    """Empirical CDF evaluated on the integer grid ``0..support_max``.

    Attributes
    ----------
    values:
        ``values[n] = P(X <= n)`` for ``n = 0..support_max``.
    sample_size:
        Number of observations behind the estimate.
    """

    values: np.ndarray
    sample_size: int

    def probability_at_most(self, n: int) -> float:
        """Return ``P(X <= n)``, clamping ``n`` to the evaluated grid."""
        n = min(max(int(n), 0), len(self.values) - 1)
        return float(self.values[n])

    @property
    def probability_zero(self) -> float:
        """``P(X = 0)`` — the headline anchor reported by the paper."""
        return float(self.values[0])


def empirical_cdf(samples: Sequence[int], support_max: int) -> CdfResult:
    """Empirical CDF of non-negative integer ``samples`` on ``0..support_max``.

    Parameters
    ----------
    samples:
        Observed counts (e.g. erroneous messages per chip).
    support_max:
        Largest ``n`` at which to evaluate the CDF (inclusive).
    """
    arr = np.asarray(samples, dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("samples must be a non-empty 1-D sequence")
    if (arr < 0).any():
        raise ValueError("samples must be non-negative counts")
    if support_max < 0:
        raise ValueError("support_max must be non-negative")
    # Mass above the grid is excluded (not clamped into the last bin), so
    # the reported CDF stays honest: values[-1] < 1 if any sample exceeds
    # support_max.
    within = arr[arr <= support_max]
    counts = np.bincount(within, minlength=support_max + 1)
    cdf = np.cumsum(counts) / arr.size
    return CdfResult(values=cdf, sample_size=int(arr.size))


def binomial_confidence_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because Fig. 5 anchors sit
    near 1.0 where the Wald interval is badly behaved.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    from scipy.stats import norm

    z = float(norm.ppf(0.5 + confidence / 2.0))
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    half = z * np.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials)) / denom
    return (max(0.0, center - half), min(1.0, center + half))


def bootstrap_confidence_interval(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    n_resamples: int = 2000,
    confidence: float = 0.95,
    random_state: RandomState = None,
) -> Tuple[float, float]:
    """Percentile bootstrap interval of ``statistic`` over ``samples``."""
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("samples must be a non-empty 1-D sequence")
    if n_resamples < 1:
        raise ValueError("n_resamples must be positive")
    rng = as_generator(random_state)
    stats = np.empty(n_resamples, dtype=float)
    n = arr.size
    for i in range(n_resamples):
        stats[i] = statistic(arr[rng.integers(0, n, size=n)])
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(stats, alpha)), float(np.quantile(stats, 1.0 - alpha)))


def summarize_counts(samples: Sequence[int]) -> dict:
    """Summary statistics block for a vector of per-chip error counts."""
    arr = np.asarray(samples, dtype=np.int64)
    if arr.size == 0:
        raise ValueError("samples must be non-empty")
    zero = int((arr == 0).sum())
    lo, hi = binomial_confidence_interval(zero, arr.size)
    return {
        "chips": int(arr.size),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "max": int(arr.max()),
        "p_zero": zero / arr.size,
        "p_zero_ci_low": lo,
        "p_zero_ci_high": hi,
    }
