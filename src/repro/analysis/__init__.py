"""Statistics helpers shared by the Monte-Carlo experiments."""

from repro.analysis.stats import (
    binomial_confidence_interval,
    bootstrap_confidence_interval,
    empirical_cdf,
    summarize_counts,
)

__all__ = [
    "binomial_confidence_interval",
    "bootstrap_confidence_interval",
    "empirical_cdf",
    "summarize_counts",
]
