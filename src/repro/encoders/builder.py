"""Generic encoder builder: any linear code -> SFQ netlist.

Used by the ablation benches to price alternatives the paper mentions —
BCH codes (Section II) and the (38,32) SEC-DED encoder of Ref. [14] —
in the same calibrated cell library as the lightweight three.
"""

from __future__ import annotations

from typing import Optional

from repro.coding.linear import LinearBlockCode
from repro.encoders.designs import EncoderDesign
from repro.sfq.cells import CellLibrary, coldflux_library
from repro.sfq.netlist import Netlist
from repro.sfq.synthesis import EncoderSynthesizer, equations_from_code


def build_encoder_for_code(
    code: LinearBlockCode,
    library: Optional[CellLibrary] = None,
    auto_share: bool = True,
    name: Optional[str] = None,
) -> EncoderDesign:
    """Synthesise an SFQ encoder for an arbitrary linear block code.

    Equations come from the generator-matrix columns (the paper's
    Eq. (2) -> Eq. (3) step); greedy common-pair extraction stands in
    for the hand-sharing of the paper's Figs. 2 and 4.
    """
    synth = EncoderSynthesizer(library or coldflux_library())
    equations = equations_from_code(code)
    netlist = synth.synthesize(
        name or f"{code.name.lower().replace('(', '').replace(')', '').replace(',', '_')}_encoder",
        [f"m{i + 1}" for i in range(code.k)],
        equations,
        auto_share=auto_share,
    )
    scheme = code.name.lower().replace("(", "").replace(")", "").replace(",", "")
    return EncoderDesign(
        scheme=scheme,
        display_name=code.name,
        code=code,
        netlist=netlist,
    )
