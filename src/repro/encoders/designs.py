"""The paper's three encoder circuits plus the no-encoder baseline.

Each design couples the algebraic code with the synthesised netlist of
the paper's schematic:

* **Hamming(8,4)** (Fig. 2) — subexpression shares ``t1 = m1^m2``
  (feeding c1 and c8) and ``t2 = m3^m4`` (feeding c2 and c4); message
  bits ride 2-DFF delay chains to c3/c5/c6/c7 whose mid-chain taps also
  feed the second-stage XORs.  Inventory: 6 XOR, 8 DFF, 23 splitters
  (10 data + 13 clock), 8 SFQ-to-DC — Table II row 3.
* **Hamming(7,4)** — the same circuit without c8 (t1 then feeds only
  c1): 5 XOR, 8 DFF, 20 splitters, 7 SFQ-to-DC — Table II row 2.
* **RM(1,3)** (Fig. 4) — shares a = m1^m2, b = m1^m3, d = m1^m4,
  t = m3^m4 with a second XOR rank for c4/c6/c7/c8: 8 XOR, 7 DFF,
  26 splitters (12 data + 14 clock), 8 SFQ-to-DC — Table II row 1.
* **no encoder** — four pass-through channels, driver-only (the
  baseline curve of Fig. 5).

All pipelines have logic depth 2 (or 0 for the baseline), matching the
two-clock-cycle latency seen in Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.coding.decoders import Decoder
from repro.coding.linear import LinearBlockCode
from repro.coding.registry import DISPLAY_NAMES, get_code, get_decoder
from repro.sfq.cells import CellLibrary, coldflux_library
from repro.sfq.netlist import Netlist
from repro.sfq.synthesis import EncoderSynthesizer, XorEquation


@dataclass(frozen=True)
class EncoderDesign:
    """A code paired with its SFQ implementation and decoder."""

    scheme: str
    display_name: str
    code: Optional[LinearBlockCode]
    netlist: Netlist

    @property
    def n_channels(self) -> int:
        """Output channels toward the higher-temperature stage."""
        return len(self.netlist.outputs)

    @property
    def message_bits(self) -> int:
        return len([i for i in self.netlist.inputs if i != "clk"])

    def decoder(self, strategy: Optional[str] = None) -> Optional[Decoder]:
        """The room-temperature decoder paired with this design."""
        if self.code is None:
            return None
        return get_decoder(self.code, strategy)

    def __repr__(self) -> str:
        return f"<EncoderDesign {self.display_name}: {self.netlist!r}>"


_MESSAGE_INPUTS = ("m1", "m2", "m3", "m4")


def hamming84_encoder_design(library: Optional[CellLibrary] = None) -> EncoderDesign:
    """Fig. 2: the Hamming(8,4) encoder netlist + code + SEC-DED decoder."""
    synth = EncoderSynthesizer(library or coldflux_library())
    equations = [
        XorEquation("c1", ("m1", "m2", "m4")),
        XorEquation("c2", ("m1", "m3", "m4")),
        XorEquation("c3", ("m1",)),
        XorEquation("c4", ("m2", "m3", "m4")),
        XorEquation("c5", ("m2",)),
        XorEquation("c6", ("m3",)),
        XorEquation("c7", ("m4",)),
        XorEquation("c8", ("m1", "m2", "m3")),
    ]
    shares = {"t1": ("m1", "m2"), "t2": ("m3", "m4")}
    netlist = synth.synthesize(
        "hamming84_encoder", _MESSAGE_INPUTS, equations, shared_terms=shares
    )
    return EncoderDesign(
        scheme="hamming84",
        display_name=DISPLAY_NAMES["hamming84"],
        code=get_code("hamming84"),
        netlist=netlist,
    )


def hamming74_encoder_design(library: Optional[CellLibrary] = None) -> EncoderDesign:
    """The Hamming(7,4) encoder: Fig. 2 without the c8 output."""
    synth = EncoderSynthesizer(library or coldflux_library())
    equations = [
        XorEquation("c1", ("m1", "m2", "m4")),
        XorEquation("c2", ("m1", "m3", "m4")),
        XorEquation("c3", ("m1",)),
        XorEquation("c4", ("m2", "m3", "m4")),
        XorEquation("c5", ("m2",)),
        XorEquation("c6", ("m3",)),
        XorEquation("c7", ("m4",)),
    ]
    shares = {"t1": ("m1", "m2"), "t2": ("m3", "m4")}
    netlist = synth.synthesize(
        "hamming74_encoder", _MESSAGE_INPUTS, equations, shared_terms=shares
    )
    return EncoderDesign(
        scheme="hamming74",
        display_name=DISPLAY_NAMES["hamming74"],
        code=get_code("hamming74"),
        netlist=netlist,
    )


def rm13_encoder_design(library: Optional[CellLibrary] = None) -> EncoderDesign:
    """Fig. 4: the RM(1,3) encoder netlist + code + FHT decoder.

    Output bit c_i (1-indexed) realises
    ``m1 ^ m2*b0 ^ m3*b1 ^ m4*b2`` with ``b2 b1 b0`` = binary(i-1).
    """
    synth = EncoderSynthesizer(library or coldflux_library())
    equations = [
        XorEquation("c1", ("m1",)),
        XorEquation("c2", ("m1", "m2")),
        XorEquation("c3", ("m1", "m3")),
        XorEquation("c4", ("m1", "m2", "m3")),
        XorEquation("c5", ("m1", "m4")),
        XorEquation("c6", ("m1", "m2", "m4")),
        XorEquation("c7", ("m1", "m3", "m4")),
        XorEquation("c8", ("m1", "m2", "m3", "m4")),
    ]
    # Fig. 4's sharing: first-rank XORs a = c2, b = c3, d = c5 are reused
    # by the second rank; t = m3^m4 pairs with a for c8 (depth 2).
    shares = {
        "a": ("m1", "m2"),
        "b": ("m1", "m3"),
        "d": ("m1", "m4"),
        "t": ("m3", "m4"),
    }
    # Rewrite so the second rank consumes the shares explicitly:
    # c4 = a^m3, c6 = a^m4, c7 = b^m4, c8 = a^t, c2 = a, c3 = b, c5 = d.
    equations = [
        XorEquation("c1", ("m1",)),
        XorEquation("c2", ("a",)),
        XorEquation("c3", ("b",)),
        XorEquation("c4", ("a", "m3")),
        XorEquation("c5", ("d",)),
        XorEquation("c6", ("a", "m4")),
        XorEquation("c7", ("b", "m4")),
        XorEquation("c8", ("a", "t")),
    ]
    netlist = synth.synthesize(
        "rm13_encoder", _MESSAGE_INPUTS, equations, shared_terms=shares
    )
    return EncoderDesign(
        scheme="rm13",
        display_name=DISPLAY_NAMES["rm13"],
        code=get_code("rm13"),
        netlist=netlist,
    )


def no_encoder_design(library: Optional[CellLibrary] = None) -> EncoderDesign:
    """The paper's 'no encoder' baseline: 4 channels, driver-only."""
    synth = EncoderSynthesizer(library or coldflux_library())
    equations = [XorEquation(f"c{i}", (f"m{i}",)) for i in range(1, 5)]
    netlist = synth.synthesize("no_encoder", _MESSAGE_INPUTS, equations)
    return EncoderDesign(
        scheme="none",
        display_name=DISPLAY_NAMES["none"],
        code=None,
        netlist=netlist,
    )


def paper_designs(library: Optional[CellLibrary] = None) -> List[EncoderDesign]:
    """The three encoders in Table II's row order (RM, H74, H84)."""
    return [
        rm13_encoder_design(library),
        hamming74_encoder_design(library),
        hamming84_encoder_design(library),
    ]


def design_for_scheme(scheme: str, library: Optional[CellLibrary] = None) -> EncoderDesign:
    """Factory by scheme name (``rm13``/``hamming74``/``hamming84``/``none``)."""
    factories = {
        "rm13": rm13_encoder_design,
        "hamming74": hamming74_encoder_design,
        "hamming84": hamming84_encoder_design,
        "none": no_encoder_design,
    }
    if scheme not in factories:
        raise KeyError(f"unknown scheme {scheme!r}; available: {sorted(factories)}")
    return factories[scheme](library)
