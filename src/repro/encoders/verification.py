"""Netlist-vs-algebra equivalence checking.

An encoder netlist is correct when, for every possible message, the
steady-state channel bits equal the algebraic codeword ``m x G`` — the
check Fig. 3 performs for one message ('1011' -> '01100110'), done
exhaustively here.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.coding.linear import LinearBlockCode
from repro.sfq.faults import FaultSimulator
from repro.sfq.netlist import Netlist


def verify_encoder_netlist(
    netlist: Netlist, code: LinearBlockCode
) -> Tuple[bool, List[str]]:
    """Exhaustively compare the netlist against the code's encoder.

    Returns ``(ok, mismatches)`` where mismatches lists human-readable
    descriptions of any failing message.
    """
    simulator = FaultSimulator(netlist)
    if simulator.message_width != code.k:
        return False, [
            f"netlist takes {simulator.message_width} message bits, code needs {code.k}"
        ]
    if len(netlist.outputs) != code.n:
        return False, [
            f"netlist has {len(netlist.outputs)} outputs, code length is {code.n}"
        ]
    messages = code.all_messages
    produced = simulator.run(messages)
    expected = code.all_codewords
    mismatches: List[str] = []
    for msg, got, want in zip(messages, produced, expected):
        if not np.array_equal(got, want):
            mismatches.append(
                "message "
                + "".join(map(str, msg))
                + ": netlist produced "
                + "".join(map(str, got))
                + ", code expects "
                + "".join(map(str, want))
            )
    return not mismatches, mismatches
