"""The paper's encoder circuits, a generic encoder builder, and
netlist-vs-algebra verification."""

from repro.encoders.designs import (
    EncoderDesign,
    hamming74_encoder_design,
    hamming84_encoder_design,
    rm13_encoder_design,
    no_encoder_design,
    paper_designs,
    design_for_scheme,
)
from repro.encoders.builder import build_encoder_for_code
from repro.encoders.verification import verify_encoder_netlist

__all__ = [
    "EncoderDesign",
    "hamming74_encoder_design",
    "hamming84_encoder_design",
    "rm13_encoder_design",
    "no_encoder_design",
    "paper_designs",
    "design_for_scheme",
    "build_encoder_for_code",
    "verify_encoder_netlist",
]
