"""Experiment drivers regenerating every table and figure of the paper.

Each module exposes ``run()`` returning a structured result and
``render(result)`` returning the printable report; the CLI and the
benchmark harness call both.
"""

from repro.experiments import (
    ablations,
    burst,
    fig3,
    fig5,
    report,
    retention,
    soft_gain,
    table1,
    table2,
)

__all__ = [
    "table1",
    "table2",
    "fig3",
    "fig5",
    "ablations",
    "report",
    "soft_gain",
    "burst",
    "retention",
]
