"""Experiment ``table2``: circuit-level comparison of the encoders.

Synthesises the three encoder netlists and rolls up standard cells,
JJ count, static power and layout area — the paper's Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.encoders.designs import paper_designs
from repro.encoders.verification import verify_encoder_netlist
from repro.sfq.physical import CircuitSummary, summarize_circuit
from repro.utils.tables import format_table

#: Table II as printed in the paper (JJ count, power uW, area mm^2).
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "rm13": dict(xor=8, dff=7, splitters=26, drivers=8,
                 jj=305, power_uw=101.5, area_mm2=0.193),
    "hamming74": dict(xor=5, dff=8, splitters=20, drivers=7,
                      jj=247, power_uw=81.7, area_mm2=0.158),
    "hamming84": dict(xor=6, dff=8, splitters=23, drivers=8,
                      jj=278, power_uw=92.3, area_mm2=0.177),
}


@dataclass
class Table2Result:
    summaries: Dict[str, CircuitSummary]
    functional_ok: Dict[str, bool]

    def matches_paper(self) -> bool:
        for scheme, summary in self.summaries.items():
            paper = PAPER_TABLE2[scheme]
            counts = summary.cell_counts
            if (
                counts.get("XOR", 0) != paper["xor"]
                or counts.get("DFF", 0) != paper["dff"]
                or counts.get("SPL", 0) != paper["splitters"]
                or counts.get("SFQDC", 0) != paper["drivers"]
                or summary.jj_count != paper["jj"]
                or round(summary.static_power_uw, 1) != paper["power_uw"]
                or round(summary.area_mm2, 3) != paper["area_mm2"]
            ):
                return False
        return True


def run() -> Table2Result:
    summaries: Dict[str, CircuitSummary] = {}
    functional: Dict[str, bool] = {}
    for design in paper_designs():
        summaries[design.scheme] = summarize_circuit(
            design.netlist, name=design.display_name
        )
        ok, _ = verify_encoder_netlist(design.netlist, design.code)
        functional[design.scheme] = ok
    return Table2Result(summaries=summaries, functional_ok=functional)


def render(result: Table2Result) -> str:
    headers = ["Encoder", "Standard cells", "JJ", "Power (uW)", "Area (mm2)",
               "paper JJ/P/A", "encodes OK"]
    rows: List[List[object]] = []
    for scheme in ("rm13", "hamming74", "hamming84"):
        summary = result.summaries[scheme]
        paper = PAPER_TABLE2[scheme]
        rows.append([
            summary.name,
            summary.standard_cells_description(),
            summary.jj_count,
            round(summary.static_power_uw, 1),
            round(summary.area_mm2, 3),
            f"{paper['jj']}/{paper['power_uw']}/{paper['area_mm2']}",
            result.functional_ok[scheme],
        ])
    table = format_table(
        headers, rows,
        title="Table II — circuit-level comparison of error-correction code encoders",
    )
    return table + f"\n\nall entries match paper: {result.matches_paper()}"
