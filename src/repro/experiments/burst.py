"""Burst resilience: interleaved vs bare codes on a Gilbert–Elliott link.

For every swept mean burst length, two *paired* populations run on the
Monte-Carlo engine: the ``bare`` arm sends ``depth`` consecutive base
codewords straight through the burst channel; the ``interleaved`` arm
sends the same message bits as one
:class:`~repro.coding.interleave.InterleavedCode` word over the *same*
channel realisation.  Pairing is exact, not just statistical: each chip
draws its messages, then one state-uniform block, then one flip-uniform
block — and both arms push their (identically long) bit streams through
:meth:`~repro.link.burst.GilbertElliottChannel.apply_draws` on those
very blocks, so every burst hits the same stream positions in both
arms.  The only difference is *where* those positions fall inside a
codeword, which is precisely what interleaving changes.

Sweeping the burst length at fixed burst *density* (via
:meth:`~repro.link.burst.GilbertElliottChannel.from_burst_profile`)
keeps the average raw flip rate constant across the sweep, so the
curves isolate error correlation — the regime where the paper's
lightweight decoders drown bare but survive interleaved.

The per-chip statistic is the count of erroneous delivered message
bits, merged into residual BER per (burst length, arm).  Both arms are
ordinary engine specs: sharded, multiprocessed bit-identically with
``--jobs``, content-addressed in the result cache and resumable — see
:func:`repro.runtime.worker.register_shard_runner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.interleave import InterleavedCode, InterleavedDecoder
from repro.coding.registry import get_code, get_decoder
from repro.link.burst import GilbertElliottChannel
from repro.runtime import MonteCarloEngine, register_shard_runner
from repro.runtime.spec import Shard, spec_config_hash
from repro.utils.rng import SeedPlan

#: Arms compared per burst-length point.
ARMS = ("bare", "interleaved")

#: Mean burst lengths (bits) spanning isolated flips to full bad words.
DEFAULT_BURST_LENS = (2.0, 4.0, 6.0, 8.0)


@dataclass(frozen=True)
class BurstResilienceSpec:
    """One (code, burst length, arm) population, fully pinned down."""

    #: Workload kind dispatched by :func:`repro.runtime.worker.run_shard`.
    kind = "burst-resilience"

    code: str
    arm: str                  # "bare" | "interleaved"
    depth: int
    burst_len: float          # mean bad-state dwell in bits
    density: float            # stationary bad-state probability
    p_bad: float
    p_good: float
    n_chips: int
    n_messages: int           # windows (interleaved words) per chip
    seed_plan: SeedPlan
    decoder_strategy: Optional[str] = None
    #: Display name for progress reporting; not part of the cache identity.
    label: Optional[str] = None

    def __post_init__(self):
        if self.arm not in ARMS:
            raise ValueError(f"arm must be one of {ARMS}, got {self.arm!r}")
        if self.depth < 1:
            raise ValueError(f"depth must be >= 1, got {self.depth}")
        if self.n_chips < 0:
            raise ValueError(f"n_chips must be non-negative, got {self.n_chips}")
        if self.n_messages < 1:
            raise ValueError(f"n_messages must be positive, got {self.n_messages}")

    @property
    def display_label(self) -> str:
        return self.label or f"{self.code} {self.arm} burst={self.burst_len:g}"

    def to_dict(self) -> dict:
        """Canonical (JSON-stable) description — the cache identity."""
        return {
            "kind": self.kind,
            "code": self.code,
            "arm": self.arm,
            "depth": self.depth,
            "burst_len": self.burst_len,
            "density": self.density,
            "p_bad": self.p_bad,
            "p_good": self.p_good,
            "n_chips": self.n_chips,
            "n_messages": self.n_messages,
            "seed_plan": self.seed_plan.to_dict(),
            "decoder_strategy": self.decoder_strategy,
        }

    def config_hash(self) -> str:
        return spec_config_hash(self)


@lru_cache(maxsize=None)
def _burst_codecs(code_name: str, depth: int, decoder_strategy: Optional[str]):
    """Per-process memo of the (base, interleaved) codec pairs."""
    base = get_code(code_name)
    base_decoder = get_decoder(base, decoder_strategy)
    icode = InterleavedCode(base, depth)
    return base, base_decoder, icode, InterleavedDecoder(icode, base_decoder)


def _run_burst_shard(spec: BurstResilienceSpec, shard: Shard) -> np.ndarray:
    """Per-chip erroneous delivered message *bits* for one arm.

    Chip ``i`` always consumes seed-plan child ``i``, drawing messages,
    then state uniforms, then flip uniforms — before anything
    arm-specific happens — so the bare and interleaved arms of the same
    (code, burst length, seed) population see identical channel
    realisations, stream position for stream position.
    """
    base, base_decoder, icode, idecoder = _burst_codecs(
        spec.code, spec.depth, spec.decoder_strategy
    )
    channel = GilbertElliottChannel.from_burst_profile(
        spec.burst_len, spec.density, p_bad=spec.p_bad, p_good=spec.p_good
    )
    depth, n, k = spec.depth, base.n, base.k
    counts = np.empty(shard.n_chips, dtype=np.int64)
    for offset, rng in enumerate(spec.seed_plan.generators(shard.start, shard.stop)):
        messages = rng.integers(
            0, 2, size=(spec.n_messages * depth, k)
        ).astype(np.uint8)
        stream_shape = (spec.n_messages, depth * n)
        state_draws = rng.random(stream_shape)
        flip_draws = rng.random(stream_shape)
        if spec.arm == "bare":
            # depth consecutive base codewords form each channel window.
            stream = base.encode_batch(messages).reshape(stream_shape)
            received = channel.apply_draws(stream, state_draws, flip_draws)
            delivered = base_decoder.decode_batch(received.reshape(-1, n))
        else:
            # The same message bits as one interleaved word per window;
            # InterleavedCode.encode_batch == interleave(concat(base
            # codewords)), so the window streams are permutations of the
            # bare arm's — over identical channel draws.
            words = icode.encode_batch(messages.reshape(spec.n_messages, depth * k))
            received = channel.apply_draws(words, state_draws, flip_draws)
            delivered = idecoder.decode_batch(received).reshape(-1, k)
        counts[offset] = int((delivered != messages).sum())
    return counts


register_shard_runner(BurstResilienceSpec.kind, _run_burst_shard)


# ---------------------------------------------------------------------
# Experiment driver
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class BurstResilienceConfig:
    """Parameters of the interleaved-vs-bare burst sweep."""

    code: str = "hamming74"
    depth: int = 8
    burst_lens: Sequence[float] = DEFAULT_BURST_LENS
    density: float = 0.10
    p_bad: float = 0.5
    p_good: float = 0.0
    n_chips: int = 100
    n_messages: int = 48
    decoder_strategy: Optional[str] = None
    seed: int = 20250831

    def __post_init__(self):
        if self.n_chips < 1 or self.n_messages < 1:
            raise ValueError("n_chips and n_messages must be positive")
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if not self.burst_lens:
            raise ValueError("burst_lens must be non-empty")


@dataclass(frozen=True)
class BurstResiliencePoint:
    """One burst-length comparison point of the sweep."""

    code: str
    depth: int
    burst_len: float
    raw_flip_probability: float   # stationary per-bit flip rate of the channel
    bare_bit_errors: int
    interleaved_bit_errors: int
    total_bits: int

    @property
    def bare_ber(self) -> float:
        """Residual message-bit error rate of the bare arm."""
        return self.bare_bit_errors / self.total_bits if self.total_bits else 0.0

    @property
    def interleaved_ber(self) -> float:
        """Residual message-bit error rate of the interleaved arm."""
        return (
            self.interleaved_bit_errors / self.total_bits if self.total_bits else 0.0
        )

    @property
    def interleaved_at_or_below_bare(self) -> bool:
        """The acceptance property: interleaving never loses to bare."""
        return self.interleaved_bit_errors <= self.bare_bit_errors


@dataclass
class BurstResilienceResult:
    """All sweep points in burst-length order."""

    config: BurstResilienceConfig
    points: List[BurstResiliencePoint]

    def interleaved_never_worse(self) -> bool:
        """True iff interleaved BER <= bare BER at every burst length."""
        return all(p.interleaved_at_or_below_bare for p in self.points)


def specs(
    config: BurstResilienceConfig,
) -> List[Tuple[BurstResilienceSpec, BurstResilienceSpec]]:
    """(bare, interleaved) spec pairs, one seed-plan child per burst length.

    The two arms of a pair share one :class:`SeedPlan` — the exact-
    pairing mechanism — and each burst length gets its own child of
    ``config.seed``, so extending the sweep never moves existing points
    onto different draws.
    """
    root = np.random.SeedSequence(config.seed)
    children = root.spawn(len(config.burst_lens))
    pairs = []
    for index, burst_len in enumerate(config.burst_lens):
        plan = SeedPlan.from_random_state(children[index])
        bare, interleaved = (
            BurstResilienceSpec(
                code=config.code,
                arm=arm,
                depth=config.depth,
                burst_len=float(burst_len),
                density=config.density,
                p_bad=config.p_bad,
                p_good=config.p_good,
                n_chips=config.n_chips,
                n_messages=config.n_messages,
                seed_plan=plan,
                decoder_strategy=config.decoder_strategy,
                label=f"{config.code}:{arm}@burst={burst_len:g}",
            )
            for arm in ARMS
        )
        pairs.append((bare, interleaved))
    return pairs


def run(
    config: Optional[BurstResilienceConfig] = None,
    engine: Optional[MonteCarloEngine] = None,
) -> BurstResilienceResult:
    """Run the full interleaved-vs-bare sweep over all burst lengths."""
    config = config or BurstResilienceConfig()
    engine = engine or MonteCarloEngine()
    pairs = specs(config)
    flat = [spec for pair in pairs for spec in pair]
    outcomes = engine.run_many(flat)
    k = get_code(config.code).k
    total_bits = config.n_chips * config.n_messages * config.depth * k
    channel_of = lambda spec: GilbertElliottChannel.from_burst_profile(  # noqa: E731
        spec.burst_len, spec.density, p_bad=spec.p_bad, p_good=spec.p_good
    )
    points = []
    for pair_index, (bare_spec, _) in enumerate(pairs):
        bare_counts = outcomes[2 * pair_index].counts
        interleaved_counts = outcomes[2 * pair_index + 1].counts
        points.append(
            BurstResiliencePoint(
                code=config.code,
                depth=config.depth,
                burst_len=bare_spec.burst_len,
                raw_flip_probability=channel_of(bare_spec).average_flip_probability(),
                bare_bit_errors=int(bare_counts.sum()),
                interleaved_bit_errors=int(interleaved_counts.sum()),
                total_bits=total_bits,
            )
        )
    return BurstResilienceResult(config=config, points=points)


def render(result: BurstResilienceResult) -> str:
    """Printable interleaved-vs-bare residual-BER table."""
    config = result.config
    lines = [
        f"Burst resilience on a Gilbert-Elliott channel: {config.code} bare vs "
        f"interleaved depth {config.depth}",
        f"  density={config.density:g} p_bad={config.p_bad:g} "
        f"p_good={config.p_good:g}; {config.n_chips} chips x "
        f"{config.n_messages} windows per point, paired channel draws",
        "",
    ]
    header = (
        f"  {'burst':>6} {'raw flip':>10} {'bare BER':>10} "
        f"{'intlv BER':>10} {'gain':>7}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for p in result.points:
        gain = (
            f"{p.bare_ber / p.interleaved_ber:6.1f}x"
            if p.interleaved_ber
            else ("   inf " if p.bare_ber else "   1.0x")
        )
        lines.append(
            f"  {p.burst_len:>6.1f} {p.raw_flip_probability:>10.2e} "
            f"{p.bare_ber:>10.2e} {p.interleaved_ber:>10.2e} {gain:>7}"
        )
    verdict = (
        "never worse" if result.interleaved_never_worse() else "WORSE SOMEWHERE"
    )
    lines.append(f"  interleaved vs bare: {verdict}")
    return "\n".join(lines)


def curves_csv(result: BurstResilienceResult) -> str:
    """The sweep as CSV (one row per burst length)."""
    rows = [
        "code,depth,burst_len,raw_flip_probability,bare_ber,interleaved_ber,"
        "bare_bit_errors,interleaved_bit_errors,total_bits"
    ]
    for p in result.points:
        rows.append(
            f"{p.code},{p.depth},{p.burst_len:g},{p.raw_flip_probability:.6e},"
            f"{p.bare_ber:.6e},{p.interleaved_ber:.6e},"
            f"{p.bare_bit_errors},{p.interleaved_bit_errors},{p.total_bits}"
        )
    return "\n".join(rows) + "\n"
