"""Hard-vs-soft coding gain on the Monte-Carlo engine.

For every registry code and every AWGN noise level, two paired
populations run through :class:`~repro.runtime.engine.MonteCarloEngine`:
one decodes hard-sliced bits through the code's paired hard decoder,
the other feeds the *same* noisy confidences (same seed plan, same
draws) to the decoder's vectorised soft kernel.  The per-chip statistic
is the count of erroneous delivered message *bits*, so the merged
counts divide straight into residual BER curves — the hard-vs-soft gap
is the coding gain the paper's soft information buys.

Both populations are ordinary engine specs: sharded, multiprocessed
bit-identically with ``--jobs``, content-addressed in the result cache
and resumable, exactly like Fig. 5 (see
:func:`repro.runtime.worker.register_shard_runner`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.registry import DISPLAY_NAMES, get_code, get_decoder
from repro.link.awgn import AwgnFluxChannel
from repro.runtime import MonteCarloEngine, register_shard_runner
from repro.runtime.spec import Shard, spec_config_hash
from repro.utils.rng import SeedPlan

#: Decision policies compared per (code, sigma) point.
DECISIONS = ("hard", "soft")

#: Registry codes with a coding gain to measure (``none`` has no code).
DEFAULT_CODES = ("rm13", "hamming74", "hamming84")

#: Noise RMS values (fraction of the flux eye) spanning the waterfall:
#: ~0.6% raw BER at 0.2 up to ~20% at 0.6.
DEFAULT_SIGMAS = (0.2, 0.3, 0.4, 0.5, 0.6)


@dataclass(frozen=True)
class SoftGainSpec:
    """One (code, sigma, decision) population, fully pinned down."""

    #: Workload kind dispatched by :func:`repro.runtime.worker.run_shard`.
    kind = "soft-gain"

    code: str
    decision: str            # "hard" | "soft"
    sigma: float
    n_chips: int
    n_messages: int
    seed_plan: SeedPlan
    decoder_strategy: Optional[str] = None
    #: Display name for progress reporting; not part of the cache identity.
    label: Optional[str] = None

    def __post_init__(self):
        if self.decision not in DECISIONS:
            raise ValueError(
                f"decision must be one of {DECISIONS}, got {self.decision!r}"
            )
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if self.n_chips < 0:
            raise ValueError(f"n_chips must be non-negative, got {self.n_chips}")
        if self.n_messages < 1:
            raise ValueError(f"n_messages must be positive, got {self.n_messages}")

    @property
    def display_label(self) -> str:
        return self.label or f"{self.code} {self.decision} sigma={self.sigma:g}"

    def to_dict(self) -> dict:
        """Canonical (JSON-stable) description — the cache identity."""
        return {
            "kind": self.kind,
            "code": self.code,
            "decision": self.decision,
            "sigma": self.sigma,
            "n_chips": self.n_chips,
            "n_messages": self.n_messages,
            "seed_plan": self.seed_plan.to_dict(),
            "decoder_strategy": self.decoder_strategy,
        }

    def config_hash(self) -> str:
        return spec_config_hash(self)


@lru_cache(maxsize=None)
def _codec_for(code_name: str, decoder_strategy: Optional[str]):
    """Per-process memo of (code, decoder) builds, like the link memo."""
    code = get_code(code_name)
    return code, get_decoder(code, decoder_strategy)


def _run_soft_gain_shard(spec: SoftGainSpec, shard: Shard) -> np.ndarray:
    """Per-chip erroneous delivered message *bits* for one decision arm.

    Chip ``i`` always consumes seed-plan child ``i``, and the message
    and noise draws happen before the decision policy branches — so the
    hard and soft arms of the same (code, sigma, seed) see identical
    channel realisations, frame for frame.
    """
    code, decoder = _codec_for(spec.code, spec.decoder_strategy)
    channel = AwgnFluxChannel(sigma=spec.sigma)
    counts = np.empty(shard.n_chips, dtype=np.int64)
    for offset, rng in enumerate(spec.seed_plan.generators(shard.start, shard.stop)):
        messages = rng.integers(0, 2, size=(spec.n_messages, code.k)).astype(np.uint8)
        confidences = channel.transmit_soft(code.encode_batch(messages), rng)
        if spec.decision == "hard":
            delivered = decoder.decode_batch(channel.harden(confidences))
        else:
            delivered = decoder.decode_soft_batch(confidences)
        counts[offset] = int((delivered != messages).sum())
    return counts


register_shard_runner(SoftGainSpec.kind, _run_soft_gain_shard)


# ---------------------------------------------------------------------
# Experiment driver
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class SoftGainConfig:
    """Parameters of the hard-vs-soft sweep."""

    codes: Sequence[str] = DEFAULT_CODES
    sigmas: Sequence[float] = DEFAULT_SIGMAS
    n_chips: int = 200
    n_messages: int = 256
    decoder_strategy: Optional[str] = None
    seed: int = 20250831

    def __post_init__(self):
        if self.n_chips < 1 or self.n_messages < 1:
            raise ValueError("n_chips and n_messages must be positive")
        if not self.codes or not self.sigmas:
            raise ValueError("codes and sigmas must be non-empty")


@dataclass(frozen=True)
class SoftGainPoint:
    """One (code, sigma) comparison point of the sweep."""

    code: str
    sigma: float
    raw_ber: float            # theoretical hard-slice crossover of the channel
    hard_bit_errors: int
    soft_bit_errors: int
    total_bits: int

    @property
    def hard_ber(self) -> float:
        return self.hard_bit_errors / self.total_bits if self.total_bits else 0.0

    @property
    def soft_ber(self) -> float:
        return self.soft_bit_errors / self.total_bits if self.total_bits else 0.0

    @property
    def soft_at_or_below_hard(self) -> bool:
        """The acceptance property: soft never loses to hard."""
        return self.soft_bit_errors <= self.hard_bit_errors


@dataclass
class SoftGainResult:
    """All sweep points, grouped per code in sigma order."""

    config: SoftGainConfig
    points: List[SoftGainPoint]

    def by_code(self) -> Dict[str, List[SoftGainPoint]]:
        grouped: Dict[str, List[SoftGainPoint]] = {}
        for point in self.points:
            grouped.setdefault(point.code, []).append(point)
        return grouped

    def soft_never_worse(self, code: str) -> bool:
        """True iff soft BER <= hard BER at every sigma for ``code``."""
        return all(p.soft_at_or_below_hard for p in self.points if p.code == code)


def specs(config: SoftGainConfig) -> List[Tuple[SoftGainSpec, SoftGainSpec]]:
    """(hard, soft) spec pairs, one seed-plan child per (code, sigma).

    The hard and soft arms of a pair share one :class:`SeedPlan`, which
    is what makes the comparison paired; each (code, sigma) point gets
    its own child of ``config.seed`` so adding sigmas or codes never
    moves existing points onto different draws.
    """
    root = np.random.SeedSequence(config.seed)
    children = root.spawn(len(config.codes) * len(config.sigmas))
    pairs = []
    index = 0
    for code in config.codes:
        for sigma in config.sigmas:
            plan = SeedPlan.from_random_state(children[index])
            index += 1
            hard, soft = (
                SoftGainSpec(
                    code=code,
                    decision=decision,
                    sigma=float(sigma),
                    n_chips=config.n_chips,
                    n_messages=config.n_messages,
                    seed_plan=plan,
                    decoder_strategy=config.decoder_strategy,
                    label=f"{code}:{decision}@{sigma:g}",
                )
                for decision in DECISIONS
            )
            pairs.append((hard, soft))
    return pairs


def run(
    config: Optional[SoftGainConfig] = None,
    engine: Optional[MonteCarloEngine] = None,
) -> SoftGainResult:
    """Run the full hard-vs-soft sweep (all codes x sigmas)."""
    config = config or SoftGainConfig()
    engine = engine or MonteCarloEngine()
    pairs = specs(config)
    flat = [spec for pair in pairs for spec in pair]
    outcomes = engine.run_many(flat)
    points = []
    for pair_index, (hard_spec, _) in enumerate(pairs):
        hard_counts = outcomes[2 * pair_index].counts
        soft_counts = outcomes[2 * pair_index + 1].counts
        k = get_code(hard_spec.code).k
        points.append(
            SoftGainPoint(
                code=hard_spec.code,
                sigma=hard_spec.sigma,
                raw_ber=AwgnFluxChannel(sigma=hard_spec.sigma).flip_probability(),
                hard_bit_errors=int(hard_counts.sum()),
                soft_bit_errors=int(soft_counts.sum()),
                total_bits=config.n_chips * config.n_messages * k,
            )
        )
    return SoftGainResult(config=config, points=points)


def render(result: SoftGainResult) -> str:
    """Printable hard-vs-soft residual-BER table, one block per code."""
    lines = [
        "Hard vs soft residual message-bit error rate "
        f"({result.config.n_chips} chips x {result.config.n_messages} frames "
        "per point, paired noise draws)",
    ]
    for code, points in result.by_code().items():
        display = DISPLAY_NAMES.get(code, code)
        lines.append("")
        lines.append(f"{display}")
        header = (
            f"  {'sigma':>6} {'raw BER':>10} {'hard BER':>10} "
            f"{'soft BER':>10} {'gain':>7}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for p in points:
            gain = (
                f"{p.hard_ber / p.soft_ber:6.1f}x"
                if p.soft_ber
                else ("   inf " if p.hard_ber else "   1.0x")
            )
            lines.append(
                f"  {p.sigma:>6.2f} {p.raw_ber:>10.2e} {p.hard_ber:>10.2e} "
                f"{p.soft_ber:>10.2e} {gain:>7}"
            )
        verdict = "never worse" if result.soft_never_worse(code) else "WORSE SOMEWHERE"
        lines.append(f"  soft vs hard: {verdict}")
    return "\n".join(lines)


def curves_csv(result: SoftGainResult) -> str:
    """The sweep as CSV (one row per code x sigma)."""
    rows = ["code,sigma,raw_ber,hard_ber,soft_ber,hard_bit_errors,soft_bit_errors,total_bits"]
    for p in result.points:
        rows.append(
            f"{p.code},{p.sigma:g},{p.raw_ber:.6e},{p.hard_ber:.6e},"
            f"{p.soft_ber:.6e},{p.hard_bit_errors},{p.soft_bit_errors},{p.total_bits}"
        )
    return "\n".join(rows) + "\n"
