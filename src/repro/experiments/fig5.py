"""Experiment ``fig5``: CDF of erroneous messages under PPV.

Runs the paper's Monte-Carlo (Section IV / Fig. 5): for each coding
scheme, 1000 virtual chips are sampled at +/-20 % parameter spread;
each chip transmits 100 random 4-bit messages; the CDF of the per-chip
erroneous-message count N is reported together with the P(N = 0)
anchors the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import binomial_confidence_interval
from repro.runtime import MonteCarloEngine
from repro.system.calibration import PAPER_FIG5_TARGETS
from repro.system.experiment import (
    Fig5Config,
    Fig5Result,
    run_fig5_experiment,
)
from repro.utils.tables import format_cdf_plot, format_table

#: Display order matching the paper's Fig. 5 legend.
LEGEND_ORDER = ("rm13", "hamming74", "hamming84", "none")


@dataclass
class Fig5Report:
    result: Fig5Result

    def anchors_close_to_paper(self, tolerance: float = 0.03) -> bool:
        for scheme, target in PAPER_FIG5_TARGETS.items():
            got = self.result.schemes[scheme].probability_zero_errors
            if abs(got - target) > tolerance:
                return False
        return True

    def ordering_matches_paper(self) -> bool:
        anchors = self.result.anchors()
        return (
            anchors["none"] < anchors["rm13"] < anchors["hamming74"] < anchors["hamming84"]
        )


def run(
    config: Optional[Fig5Config] = None,
    engine: Optional[MonteCarloEngine] = None,
) -> Fig5Report:
    return Fig5Report(result=run_fig5_experiment(config, engine=engine))


def cdf_csv(report: Fig5Report, max_n: int = 100) -> str:
    """CSV dump of the CDF curves (column per scheme)."""
    lines = ["N," + ",".join(
        report.result.schemes[s].display_name for s in LEGEND_ORDER
    )]
    cdfs = {s: report.result.schemes[s].cdf.values for s in LEGEND_ORDER}
    for n in range(max_n + 1):
        row = [str(n)]
        for s in LEGEND_ORDER:
            values = cdfs[s]
            row.append(f"{values[min(n, len(values) - 1)]:.4f}")
        lines.append(",".join(row))
    return "\n".join(lines)


def render(report: Fig5Report) -> str:
    result = report.result
    config = result.config
    lines = [
        "Fig. 5 — CDF of receiving at most N erroneous messages out of "
        f"{config.n_messages} transmissions",
        f"{config.n_chips} chips per scheme, spread {config.spread.describe()}",
    ]
    headers = ["Scheme", "P(N=0)", "95% CI", "paper", "diff", "mean N", "max N"]
    rows = []
    for scheme in LEGEND_ORDER:
        res = result.schemes[scheme]
        p_zero = res.probability_zero_errors
        zero_count = int((res.counts == 0).sum())
        lo, hi = binomial_confidence_interval(zero_count, len(res.counts))
        paper = PAPER_FIG5_TARGETS.get(scheme)
        rows.append([
            res.display_name,
            f"{p_zero:.3f}",
            f"({lo:.3f},{hi:.3f})",
            f"{paper:.3f}" if paper is not None else "-",
            f"{p_zero - paper:+.3f}" if paper is not None else "-",
            f"{res.counts.mean():.2f}",
            int(res.counts.max()),
        ])
    lines.append(format_table(headers, rows))
    lines.append(
        "ordering matches paper (none < RM < H74 < H84): "
        f"{report.ordering_matches_paper()}"
    )
    series = {
        result.schemes[s].display_name: result.schemes[s].cdf.values[:91]
        for s in LEGEND_ORDER
    }
    lines.append(format_cdf_plot(series, y_min=0.70, x_label="N (erroneous messages)"))
    return "\n".join(lines)
