"""Experiment ``table1``: detected/corrected error capabilities.

Regenerates the paper's Table I (worst/best case errors detected and
corrected per code) from exhaustive error-pattern enumeration, plus the
Section II-C footnote that Hamming(7,4) detects 28 of 35 three-bit
patterns (80 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.coding.analysis import (
    Table1Row,
    correction_profiles,
    detection_profiles,
    hamming74_three_bit_detection,
    table1_row,
)
from repro.coding.registry import get_code, get_decoder
from repro.utils.tables import format_table

#: Table I values as printed in the paper, keyed by scheme.
PAPER_TABLE1: Dict[str, Dict[str, int]] = {
    "hamming74": dict(dmin=3, worst_detected=1, worst_corrected=1,
                      best_detected=3, best_corrected=1),
    "hamming84": dict(dmin=4, worst_detected=3, worst_corrected=1,
                      best_detected=3, best_corrected=1),
    "rm13": dict(dmin=4, worst_detected=3, worst_corrected=1,
                 best_detected=3, best_corrected=2),
}

SCHEMES = ("hamming74", "hamming84", "rm13")


@dataclass
class Table1Result:
    rows: Dict[str, Table1Row]
    three_bit_detection: Dict[str, float]
    detection_detail: Dict[str, List]
    correction_detail: Dict[str, List]

    def matches_paper(self) -> bool:
        for scheme, row in self.rows.items():
            paper = PAPER_TABLE1[scheme]
            got = dict(
                dmin=row.dmin,
                worst_detected=row.worst_detected,
                worst_corrected=row.worst_corrected,
                best_detected=row.best_detected,
                best_corrected=row.best_corrected,
            )
            if got != paper:
                return False
        return True


def run() -> Table1Result:
    """Enumerate all error patterns for the three codes."""
    rows: Dict[str, Table1Row] = {}
    detection_detail: Dict[str, List] = {}
    correction_detail: Dict[str, List] = {}
    for scheme in SCHEMES:
        code = get_code(scheme)
        decoder = get_decoder(code)
        rows[scheme] = table1_row(code, decoder)
        detection_detail[scheme] = detection_profiles(code, max_weight=4)
        correction_detail[scheme] = correction_profiles(code, decoder, max_weight=4)
    return Table1Result(
        rows=rows,
        three_bit_detection=hamming74_three_bit_detection(get_code("hamming74")),
        detection_detail=detection_detail,
        correction_detail=correction_detail,
    )


def render(result: Table1Result) -> str:
    """Text report mirroring Table I with paper-vs-measured columns."""
    headers = [
        "Code", "dmin",
        "W detect", "W correct", "B detect", "B correct", "paper (W d/c, B d/c)",
    ]
    table_rows = []
    for scheme in SCHEMES:
        row = result.rows[scheme]
        paper = PAPER_TABLE1[scheme]
        table_rows.append([
            row.code_name, row.dmin,
            row.worst_detected, row.worst_corrected,
            row.best_detected, row.best_corrected,
            f"{paper['worst_detected']}/{paper['worst_corrected']}, "
            f"{paper['best_detected']}/{paper['best_corrected']}",
        ])
    lines = [format_table(headers, table_rows,
                          title="Table I — detected and corrected errors")]
    det = result.three_bit_detection
    lines.append(
        f"Hamming(7,4) 3-bit detection-only: {det['detected']}/{det['total']}"
        f" = {det['rate'] * 100:.0f}% (paper: 28/35 = 80%)"
    )
    lines.append(f"all entries match paper: {result.matches_paper()}")
    # Per-weight correction-mode detail.
    for scheme in SCHEMES:
        profiles = result.correction_detail[scheme]
        detail_rows = [
            [p.weight, p.pattern_count, p.corrected + p.corrected_flagged,
             p.detected, p.silent, p.some_strict_corrected_patterns]
            for p in profiles
        ]
        lines.append(format_table(
            ["w", "patterns", "msg survives", "flagged wrong", "silent wrong",
             "patterns strictly correctable"],
            detail_rows,
            title=f"correction-mode detail — {result.rows[scheme].code_name} "
                  "(counts over codeword x pattern pairs)",
        ))
    return "\n\n".join(lines)
