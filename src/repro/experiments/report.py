"""One-stop artefact generation: every table/figure into a directory.

``repro report --output artifacts/`` (or :func:`generate_full_report`)
runs Table I, Table II, Fig. 3 and Fig. 5 plus the ablations, writes
the rendered text reports, the Fig. 3 waveform CSV, the Fig. 5 CDF CSV
and the JoSIM decks, and returns a manifest — the layout a reviewer
would want from a reproduction artefact.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._version import __version__


@dataclass
class ReportManifest:
    """What was generated and whether it matched the paper."""

    output_dir: str
    files: List[str] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())


def generate_full_report(
    output_dir: str,
    n_chips: int = 1000,
    seed: int = 20250831,
    include_ablations: bool = True,
    ablation_chips: int = 400,
    engine: Optional["MonteCarloEngine"] = None,
) -> ReportManifest:
    """Regenerate every artefact into ``output_dir``.

    ``engine`` (a :class:`repro.runtime.MonteCarloEngine`) controls how
    the Monte-Carlo artefacts — Fig. 5 and the ablation sweeps — are
    executed: worker count, result cache, progress reporting.  ``None``
    runs them inline and uncached.
    """
    from repro.encoders.designs import design_for_scheme
    from repro.experiments import ablations, fig3, fig5, table1, table2
    from repro.runtime import MonteCarloEngine
    from repro.sfq.josim import export_josim_deck
    from repro.system.experiment import Fig5Config

    engine = engine or MonteCarloEngine()

    os.makedirs(output_dir, exist_ok=True)
    manifest = ReportManifest(output_dir=output_dir)

    def write(name: str, text: str) -> None:
        path = os.path.join(output_dir, name)
        with open(path, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        manifest.files.append(name)

    # Table I
    t1 = table1.run()
    write("table1.txt", table1.render(t1))
    manifest.checks["table1_matches_paper"] = t1.matches_paper()

    # Table II
    t2 = table2.run()
    write("table2.txt", table2.render(t2))
    manifest.checks["table2_matches_paper"] = t2.matches_paper()

    # Fig. 3
    f3 = fig3.run()
    write("fig3.txt", fig3.render(f3))
    write("fig3_waveforms.csv", f3.waveforms.to_csv())
    manifest.checks["fig3_worked_example"] = f3.paper_example_ok

    # Fig. 5
    f5 = fig5.run(Fig5Config(n_chips=n_chips, seed=seed), engine=engine)
    write("fig5.txt", fig5.render(f5))
    write("fig5_cdf.csv", fig5.cdf_csv(f5))
    manifest.checks["fig5_ordering"] = f5.ordering_matches_paper()
    manifest.checks["fig5_anchors_within_3pct"] = f5.anchors_close_to_paper(0.03)

    # Ablations
    if include_ablations:
        abl = ablations.run(n_chips=ablation_chips, seed=seed % 1000, engine=engine)
        write("ablations.txt", ablations.render(abl))

    # JoSIM decks
    for scheme in ("rm13", "hamming74", "hamming84"):
        deck = export_josim_deck(design_for_scheme(scheme).netlist, spread=0.20)
        write(f"josim_{scheme}.cir", deck)

    # Manifest summary
    summary_lines = [
        f"repro {__version__} reproduction artefacts",
        f"fig5: {n_chips} chips, seed {seed}",
        "",
        "checks:",
    ]
    for name, ok in manifest.checks.items():
        summary_lines.append(f"  {name}: {'PASS' if ok else 'FAIL'}")
    summary_lines.append("")
    summary_lines.append("files:")
    summary_lines.extend(f"  {name}" for name in manifest.files)
    write("MANIFEST.txt", "\n".join(summary_lines))
    return manifest
