"""Scrubbed-vs-unscrubbed memory retention on the Monte-Carlo engine.

A superconducting memory protected by one of the paper's lightweight
encoders rots: shift-register storage loses bits to flux escape at some
per-bit rate per retention interval.  A scrubber that periodically
decodes and rewrites each line bounds how much rot a line can
accumulate between repairs; without it, single-bit hits pile up until
they cross the code's correction radius and the line is lost.

For every (code, rot-rate) point two paired populations run through
:class:`~repro.runtime.engine.MonteCarloEngine`: both write the same
random messages into a :class:`~repro.memory.frontend.MemoryEccFrontend`
and suffer *identical* rot draws sweep after sweep (same seed plan,
and scrubbing consumes no randomness), but only one arm runs a full
:class:`~repro.memory.scrub.Scrubber` sweep after each rot interval.
The per-chip statistic is the count of lines whose final read delivers
the wrong message — word errors — so the merged counts divide straight
into retention word-error rates and the scrubbed/unscrubbed gap is the
scrubbing gain.

Both populations are ordinary engine specs: sharded, multiprocessed
bit-identically with ``--jobs``, content-addressed in the result cache
and resumable, exactly like Fig. 5 and the soft-gain sweep (see
:func:`repro.runtime.worker.register_shard_runner`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.registry import DISPLAY_NAMES, get_code, get_decoder
from repro.memory.frontend import MemoryEccFrontend
from repro.memory.scrub import Scrubber
from repro.runtime import MonteCarloEngine, register_shard_runner
from repro.runtime.spec import Shard, spec_config_hash
from repro.utils.rng import SeedPlan

#: Maintenance policies compared per (code, rot) point.
POLICIES = ("unscrubbed", "scrubbed")

#: Registry codes with a correction radius to spend on rot.
DEFAULT_CODES = ("rm13", "hamming74", "hamming84")

#: Per-bit rot probabilities per retention interval, spanning "a scrub
#: sweep fixes everything" up to "multi-bit hits within one interval".
DEFAULT_ROTS = (0.001, 0.003, 0.01, 0.03)


@dataclass(frozen=True)
class RetentionSpec:
    """One (code, rot, policy) population, fully pinned down."""

    #: Workload kind dispatched by :func:`repro.runtime.worker.run_shard`.
    kind = "retention"

    code: str
    policy: str              # "unscrubbed" | "scrubbed"
    rot: float               # per-bit flip probability per sweep interval
    lines: int               # memory lines per chip
    sweeps: int              # rot intervals between write and final read
    n_chips: int
    seed_plan: SeedPlan
    decoder_strategy: Optional[str] = None
    #: Display name for progress reporting; not part of the cache identity.
    label: Optional[str] = None

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {self.policy!r}"
            )
        if not 0.0 <= self.rot <= 1.0:
            raise ValueError(f"rot must be in [0, 1], got {self.rot}")
        if self.lines < 1:
            raise ValueError(f"lines must be positive, got {self.lines}")
        if self.sweeps < 1:
            raise ValueError(f"sweeps must be positive, got {self.sweeps}")
        if self.n_chips < 0:
            raise ValueError(f"n_chips must be non-negative, got {self.n_chips}")

    @property
    def display_label(self) -> str:
        return self.label or f"{self.code} {self.policy} rot={self.rot:g}"

    def to_dict(self) -> dict:
        """Canonical (JSON-stable) description — the cache identity."""
        return {
            "kind": self.kind,
            "code": self.code,
            "policy": self.policy,
            "rot": self.rot,
            "lines": self.lines,
            "sweeps": self.sweeps,
            "n_chips": self.n_chips,
            "seed_plan": self.seed_plan.to_dict(),
            "decoder_strategy": self.decoder_strategy,
        }

    def config_hash(self) -> str:
        return spec_config_hash(self)


@lru_cache(maxsize=None)
def _codec_for(code_name: str, decoder_strategy: Optional[str]):
    """Per-process memo of (code, decoder) builds, like the link memo."""
    code = get_code(code_name)
    return code, get_decoder(code, decoder_strategy)


def _run_retention_shard(spec: RetentionSpec, shard: Shard) -> np.ndarray:
    """Per-chip word errors (wrong final reads) for one maintenance arm.

    Chip ``i`` always consumes seed-plan child ``i``, and the message
    and rot draws happen identically in both arms (scrubbing itself is
    deterministic and draws nothing) — so the scrubbed and unscrubbed
    arms of the same (code, rot, seed) suffer the same flux hits, bit
    for bit.
    """
    code, decoder = _codec_for(spec.code, spec.decoder_strategy)
    counts = np.empty(shard.n_chips, dtype=np.int64)
    for offset, rng in enumerate(spec.seed_plan.generators(shard.start, shard.stop)):
        frontend = MemoryEccFrontend(code, decoder, spec.lines)
        addresses = np.arange(spec.lines, dtype=np.int64)
        messages = rng.integers(0, 2, size=(spec.lines, code.k)).astype(np.uint8)
        frontend.write(addresses, messages)
        scrubber = Scrubber(frontend) if spec.policy == "scrubbed" else None
        for _ in range(spec.sweeps):
            frontend.inject_rot(rng, spec.rot)
            if scrubber is not None:
                scrubber.sweep()
        delivered = frontend.read(addresses)
        counts[offset] = int(
            (delivered.messages != messages).any(axis=1).sum()
        )
    return counts


register_shard_runner(RetentionSpec.kind, _run_retention_shard)


# ---------------------------------------------------------------------
# Experiment driver
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class RetentionConfig:
    """Parameters of the scrubbed-vs-unscrubbed retention sweep."""

    codes: Sequence[str] = DEFAULT_CODES
    rots: Sequence[float] = DEFAULT_ROTS
    lines: int = 64
    sweeps: int = 16
    n_chips: int = 200
    decoder_strategy: Optional[str] = None
    seed: int = 20250831

    def __post_init__(self):
        if self.n_chips < 1:
            raise ValueError("n_chips must be positive")
        if self.lines < 1 or self.sweeps < 1:
            raise ValueError("lines and sweeps must be positive")
        if not self.codes or not self.rots:
            raise ValueError("codes and rots must be non-empty")


@dataclass(frozen=True)
class RetentionPoint:
    """One (code, rot) comparison point of the sweep."""

    code: str
    rot: float
    unscrubbed_word_errors: int
    scrubbed_word_errors: int
    total_words: int

    @property
    def unscrubbed_wer(self) -> float:
        return (
            self.unscrubbed_word_errors / self.total_words
            if self.total_words
            else 0.0
        )

    @property
    def scrubbed_wer(self) -> float:
        return (
            self.scrubbed_word_errors / self.total_words
            if self.total_words
            else 0.0
        )

    @property
    def scrub_at_or_below_unscrubbed(self) -> bool:
        """The acceptance property: scrubbing never loses to neglect."""
        return self.scrubbed_word_errors <= self.unscrubbed_word_errors


@dataclass
class RetentionResult:
    """All sweep points, grouped per code in rot order."""

    config: RetentionConfig
    points: List[RetentionPoint]

    def by_code(self) -> Dict[str, List[RetentionPoint]]:
        grouped: Dict[str, List[RetentionPoint]] = {}
        for point in self.points:
            grouped.setdefault(point.code, []).append(point)
        return grouped

    def scrub_never_worse(self, code: str) -> bool:
        """True iff scrubbed WER <= unscrubbed WER at every rot for ``code``."""
        return all(
            p.scrub_at_or_below_unscrubbed for p in self.points if p.code == code
        )


def specs(config: RetentionConfig) -> List[Tuple[RetentionSpec, RetentionSpec]]:
    """(unscrubbed, scrubbed) spec pairs, one seed-plan child per point.

    The two arms of a pair share one :class:`SeedPlan`, which is what
    makes the comparison paired (scrubbing draws nothing, so both arms
    replay identical rot); each (code, rot) point gets its own child of
    ``config.seed`` so adding rots or codes never moves existing points
    onto different draws.
    """
    root = np.random.SeedSequence(config.seed)
    children = root.spawn(len(config.codes) * len(config.rots))
    pairs = []
    index = 0
    for code in config.codes:
        for rot in config.rots:
            plan = SeedPlan.from_random_state(children[index])
            index += 1
            unscrubbed, scrubbed = (
                RetentionSpec(
                    code=code,
                    policy=policy,
                    rot=float(rot),
                    lines=config.lines,
                    sweeps=config.sweeps,
                    n_chips=config.n_chips,
                    seed_plan=plan,
                    decoder_strategy=config.decoder_strategy,
                    label=f"{code}:{policy}@{rot:g}",
                )
                for policy in POLICIES
            )
            pairs.append((unscrubbed, scrubbed))
    return pairs


def run(
    config: Optional[RetentionConfig] = None,
    engine: Optional[MonteCarloEngine] = None,
) -> RetentionResult:
    """Run the full retention sweep (all codes x rot rates, both arms)."""
    config = config or RetentionConfig()
    engine = engine or MonteCarloEngine()
    pairs = specs(config)
    flat = [spec for pair in pairs for spec in pair]
    outcomes = engine.run_many(flat)
    points = []
    for pair_index, (unscrubbed_spec, _) in enumerate(pairs):
        unscrubbed_counts = outcomes[2 * pair_index].counts
        scrubbed_counts = outcomes[2 * pair_index + 1].counts
        points.append(
            RetentionPoint(
                code=unscrubbed_spec.code,
                rot=unscrubbed_spec.rot,
                unscrubbed_word_errors=int(unscrubbed_counts.sum()),
                scrubbed_word_errors=int(scrubbed_counts.sum()),
                total_words=config.n_chips * config.lines,
            )
        )
    return RetentionResult(config=config, points=points)


def render(result: RetentionResult) -> str:
    """Printable scrubbed-vs-unscrubbed WER table, one block per code."""
    config = result.config
    lines = [
        "Memory retention word-error rate, scrubbed vs unscrubbed "
        f"({config.n_chips} chips x {config.lines} lines, "
        f"{config.sweeps} rot sweeps per point, paired rot draws)",
    ]
    for code, points in result.by_code().items():
        display = DISPLAY_NAMES.get(code, code)
        lines.append("")
        lines.append(f"{display}")
        header = (
            f"  {'rot':>8} {'unscrubbed':>12} {'scrubbed':>12} {'gain':>7}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for p in points:
            gain = (
                f"{p.unscrubbed_wer / p.scrubbed_wer:6.1f}x"
                if p.scrubbed_wer
                else ("   inf " if p.unscrubbed_wer else "   1.0x")
            )
            lines.append(
                f"  {p.rot:>8.4f} {p.unscrubbed_wer:>12.2e} "
                f"{p.scrubbed_wer:>12.2e} {gain:>7}"
            )
        verdict = (
            "never worse" if result.scrub_never_worse(code) else "WORSE SOMEWHERE"
        )
        lines.append(f"  scrubbed vs unscrubbed: {verdict}")
    return "\n".join(lines)


def curves_csv(result: RetentionResult) -> str:
    """The sweep as CSV (one row per code x rot)."""
    rows = [
        "code,rot,unscrubbed_wer,scrubbed_wer,"
        "unscrubbed_word_errors,scrubbed_word_errors,total_words"
    ]
    for p in result.points:
        rows.append(
            f"{p.code},{p.rot:g},{p.unscrubbed_wer:.6e},{p.scrubbed_wer:.6e},"
            f"{p.unscrubbed_word_errors},{p.scrubbed_word_errors},{p.total_words}"
        )
    return "\n".join(rows) + "\n"
