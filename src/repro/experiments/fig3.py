"""Experiment ``fig3``: Hamming(8,4) encoder waveforms at 5 GHz.

Replays the paper's Fig. 3: a stream of 4-bit messages is applied to
the Hamming(8,4) encoder at 5 GHz with 4.2 K thermal noise; the
codeword appears two clock cycles later.  The paper's worked example —
message '1011' applied at ~0.1 ns, codeword '01100110' produced at
~0.4 ns — is checked explicitly, and the voltage traces (inputs, clock,
eight outputs) are synthesised and re-decoded from the noisy waveforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.encoders.designs import hamming84_encoder_design
from repro.gf2.vectors import format_bits, parse_bits
from repro.sfq.simulator import EncoderRun, SimulationConfig, run_encoder
from repro.sfq.waveform import (
    WaveformConfig,
    WaveformSet,
    decode_run_from_waveforms,
    render_run_waveforms,
)
from repro.utils.tables import format_table

#: The worked example in the paper's Fig. 3 narrative.
PAPER_MESSAGE = "1011"
PAPER_CODEWORD = "01100110"
PAPER_FREQUENCY_GHZ = 5.0
PAPER_LATENCY_CYCLES = 2


@dataclass
class Fig3Result:
    run: EncoderRun
    waveforms: WaveformSet
    messages: List[str]
    pipeline_codewords: List[str]
    waveform_codewords: List[str]
    expected_codewords: List[str]
    latency_cycles: int
    frequency_ghz: float

    @property
    def paper_example_ok(self) -> bool:
        return (
            self.messages
            and self.messages[0] == PAPER_MESSAGE
            and self.pipeline_codewords[0] == PAPER_CODEWORD
            and self.waveform_codewords[0] == PAPER_CODEWORD
            and self.latency_cycles == PAPER_LATENCY_CYCLES
        )

    @property
    def all_codewords_ok(self) -> bool:
        return (
            self.pipeline_codewords == self.expected_codewords
            and self.waveform_codewords == self.expected_codewords
        )


def run(
    messages: Optional[List[str]] = None,
    frequency_ghz: float = PAPER_FREQUENCY_GHZ,
    noise_uvolt_rms: float = 18.0,
    seed: int = 42,
    gate_width_ps: Optional[float] = None,
) -> Fig3Result:
    """Simulate the Fig. 3 scenario and decode the noisy waveforms.

    ``gate_width_ps`` switches the waveform decode to gated (matched-
    filter style) integration — needed when ``noise_uvolt_rms`` is
    pushed well past the paper's 4.2 K level.
    """
    if messages is None:
        # Paper's example first, then a few more to show the pipeline.
        messages = [PAPER_MESSAGE, "0110", "1111", "0001", "1010"]
    design = hamming84_encoder_design()
    message_bits = [parse_bits(m, length=4) for m in messages]
    config = SimulationConfig(
        frequency_ghz=frequency_ghz,
        n_cycles=len(messages) + 5,
        timing_checks="record",
    )
    encoder_run = run_encoder(design.netlist, message_bits, config)
    period = config.period_ps
    t_end = (len(messages) + 4) * period
    wf_config = WaveformConfig(noise_uvolt_rms=noise_uvolt_rms)
    waveforms = render_run_waveforms(
        encoder_run, wf_config, t_end_ps=t_end, random_state=seed
    )
    n_windows = encoder_run.bits_by_cycle.shape[0]
    waveform_bits = decode_run_from_waveforms(
        encoder_run, waveforms, period, n_windows, wf_config,
        gate_width_ps=gate_width_ps,
    )
    depth = design.netlist.max_logic_depth()
    pipeline_codewords = [
        format_bits(encoder_run.bits_by_cycle[i + depth]) for i in range(len(messages))
    ]
    waveform_codewords = [
        format_bits(waveform_bits[i + depth]) for i in range(len(messages))
    ]
    expected = [format_bits(design.code.encode(m)) for m in message_bits]
    return Fig3Result(
        run=encoder_run,
        waveforms=waveforms,
        messages=list(messages),
        pipeline_codewords=pipeline_codewords,
        waveform_codewords=waveform_codewords,
        expected_codewords=expected,
        latency_cycles=encoder_run.latency_cycles,
        frequency_ghz=frequency_ghz,
    )


def ascii_waveforms(result: Fig3Result, columns: int = 100) -> str:
    """Coarse ASCII rendering of the Fig. 3 traces (pulse = '|')."""
    period = 1000.0 / result.frequency_ghz
    t_end = result.waveforms.time_ps[-1]
    lines = []
    record = result.run.record

    def row(name: str, pulses: List[float]) -> str:
        cells = ["_"] * columns
        for t in pulses:
            idx = int(t / t_end * (columns - 1))
            if 0 <= idx < columns:
                cells[idx] = "|"
        return f"{name:>5s} " + "".join(cells)

    for name in sorted(record.input_pulses):
        lines.append(row(name, record.input_pulses[name]))
    lines.append(row("clk", record.clock_pulses))
    for name in result.run.output_names:
        lines.append(row(name, record.output_pulses[name]))
    lines.append(f"      0 ns {'.' * (columns - 14)} {t_end / 1000.0:.1f} ns")
    return "\n".join(lines)


def render(result: Fig3Result) -> str:
    period_ns = 1.0 / result.frequency_ghz
    lines = [
        f"Fig. 3 — Hamming(8,4) encoder at {result.frequency_ghz:g} GHz "
        f"(period {period_ns * 1000:.0f} ps), thermal noise added",
        f"pipeline latency: {result.latency_cycles} clock cycles "
        f"(paper: {PAPER_LATENCY_CYCLES})",
    ]
    headers = ["message", "applied (ns)", "codeword window (ns)",
               "pipeline bits", "waveform decode", "expected", "OK"]
    rows = []
    for i, msg in enumerate(result.messages):
        applied = (i + 0.5) * period_ns
        window = (i + result.latency_cycles) * period_ns
        ok = (
            result.pipeline_codewords[i]
            == result.waveform_codewords[i]
            == result.expected_codewords[i]
        )
        rows.append([
            msg, f"{applied:.2f}", f"{window:.2f}-{window + period_ns:.2f}",
            result.pipeline_codewords[i], result.waveform_codewords[i],
            result.expected_codewords[i], ok,
        ])
    lines.append(format_table(headers, rows))
    lines.append(
        f"paper worked example ('{PAPER_MESSAGE}' -> '{PAPER_CODEWORD}' after 2 cycles): "
        f"{'reproduced' if result.paper_example_ok else 'FAILED'}"
    )
    if result.run.timing_violations:
        lines.append(f"timing violations: {len(result.run.timing_violations)}")
    lines.append("")
    lines.append(ascii_waveforms(result))
    return "\n".join(lines)
