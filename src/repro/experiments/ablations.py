"""Ablation experiments around the paper's design choices.

Four studies backing the discussion in Sections II and IV:

* **spread sweep** — Fig. 5's P(N = 0) anchors as the PPV spread grows
  from +/-10 % to +/-30 % (the design-margin range quoted in Section I);
* **decoder-policy sweep** — the (8,4,4) code decoded three ways
  (SEC-DED detect+fallback, FHT complete, exhaustive ML) and
  Hamming(7,4) in bounded-distance mode, quantifying how much of
  Hamming(8,4)'s Fig. 5 win is decoder policy rather than code;
* **frequency sweep** — static-timing maximum clock rate per encoder
  and setup slack at the paper's 5 GHz operating point;
* **code-cost sweep** — Table II-style roll-ups for heavier codes the
  paper names as alternatives (BCH(15,7), the (38,32)-style SEC-DED of
  Ref. [14]) synthesised by the generic builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.coding.bch import bch_15_7, bch_15_11
from repro.coding.hamming import extend_with_overall_parity, hamming_code
from repro.coding.registry import DISPLAY_NAMES
from repro.encoders.builder import build_encoder_for_code
from repro.encoders.designs import paper_designs
from repro.ppv.margins import MarginModel
from repro.ppv.spread import SpreadSpec
from repro.runtime import ExperimentSpec, MonteCarloEngine
from repro.sfq.physical import summarize_circuit
from repro.sfq.timing import analyze_timing, max_frequency_ghz
from repro.system.experiment import Fig5Config, scheme_specs
from repro.utils.rng import SeedPlan
from repro.utils.tables import format_table


# ----------------------------------------------------------------------
# Spread sweep
# ----------------------------------------------------------------------
@dataclass
class SpreadSweepResult:
    spreads: List[float]
    anchors: Dict[str, List[float]]  # scheme -> P(N=0) per spread


def run_spread_sweep(
    spreads: Sequence[float] = (0.10, 0.15, 0.20, 0.25, 0.30),
    n_chips: int = 400,
    seed: int = 7,
    engine: Optional[MonteCarloEngine] = None,
) -> SpreadSweepResult:
    engine = engine or MonteCarloEngine()
    # One spec per (spread, scheme); a single run_many call lets the
    # engine interleave shards of the whole sweep across its workers.
    spec_groups = [
        scheme_specs(
            Fig5Config(
                n_chips=n_chips,
                spread=SpreadSpec(spread),
                seed=seed + int(spread * 1000),
            )
        )
        for spread in spreads
    ]
    flat_specs = [spec for group in spec_groups for spec in group]
    anchors: Dict[str, List[float]] = {}
    for spec, outcome in zip(flat_specs, engine.run_many(flat_specs)):
        anchors.setdefault(spec.scheme, []).append(outcome.probability_zero_errors)
    return SpreadSweepResult(spreads=list(spreads), anchors=anchors)


def render_spread_sweep(result: SpreadSweepResult) -> str:
    headers = ["Scheme"] + [f"+/-{s * 100:.0f}%" for s in result.spreads]
    rows = []
    for scheme, values in result.anchors.items():
        rows.append([DISPLAY_NAMES.get(scheme, scheme)] + [f"{v:.3f}" for v in values])
    return format_table(
        headers, rows,
        title="Ablation — P(N=0) vs process-parameter spread "
              "(circuits are designed for +/-20%: expect a cliff beyond it)",
    )


# ----------------------------------------------------------------------
# Decoder-policy sweep
# ----------------------------------------------------------------------
@dataclass
class DecoderSweepResult:
    anchors: Dict[str, float]  # "scheme/strategy" -> P(N=0)


#: (scheme, decoder strategy) pairs; None = the paper's default pairing.
DECODER_SWEEP_CASES = (
    ("hamming84", None),
    ("hamming84", "syndrome"),
    ("hamming84", "ml"),
    ("hamming74", None),
    ("hamming74", "sec-ded-like"),  # bounded-distance syndrome (flagging)
    ("rm13", None),
    ("rm13", "reed-majority"),
    ("rm13", "sec-ded"),
)


def run_decoder_sweep(
    n_chips: int = 400,
    seed: int = 11,
    engine: Optional[MonteCarloEngine] = None,
) -> DecoderSweepResult:
    engine = engine or MonteCarloEngine()
    spread = SpreadSpec(0.20)
    model = MarginModel()
    # Every case samples the same chip population (same seed): only the
    # decoding policy differs, which is the point of the ablation.
    seed_plan = SeedPlan.from_random_state(seed)
    specs: List[ExperimentSpec] = []
    for scheme, strategy in DECODER_SWEEP_CASES:
        bounded = strategy == "sec-ded-like"
        label = (
            f"{scheme}/bounded-syndrome" if bounded
            else f"{scheme}/{strategy or 'paper-default'}"
        )
        specs.append(
            ExperimentSpec(
                scheme=scheme,
                n_chips=n_chips,
                n_messages=100,
                spread=spread,
                margin_model=model,
                seed_plan=seed_plan,
                decoder_strategy=None if bounded else strategy,
                bounded_syndrome_weight=1 if bounded else None,
                label=label,
            )
        )
    anchors = {
        spec.label: outcome.probability_zero_errors
        for spec, outcome in zip(specs, engine.run_many(specs))
    }
    return DecoderSweepResult(anchors=anchors)


def render_decoder_sweep(result: DecoderSweepResult) -> str:
    rows = [[label, f"{p:.3f}"] for label, p in result.anchors.items()]
    return format_table(
        ["code/decoder policy", "P(N=0)"], rows,
        title="Ablation — decoder policy at +/-20% spread "
              "(same netlists, decoding swapped)",
    )


# ----------------------------------------------------------------------
# Frequency sweep
# ----------------------------------------------------------------------
@dataclass
class FrequencyResult:
    max_frequency: Dict[str, float]
    setup_slack_at_5ghz: Dict[str, float]


def run_frequency_study() -> FrequencyResult:
    max_freq: Dict[str, float] = {}
    slack: Dict[str, float] = {}
    for design in paper_designs():
        report = analyze_timing(design.netlist)
        max_freq[design.scheme] = max_frequency_ghz(design.netlist)
        slack[design.scheme] = report.setup_slack_ps(5.0)
    return FrequencyResult(max_frequency=max_freq, setup_slack_at_5ghz=slack)


def render_frequency_study(result: FrequencyResult) -> str:
    rows = []
    for scheme, freq in result.max_frequency.items():
        rows.append([
            DISPLAY_NAMES.get(scheme, scheme),
            f"{freq:.1f}",
            f"{result.setup_slack_at_5ghz[scheme]:.1f}",
        ])
    return format_table(
        ["Encoder", "max clock (GHz)", "setup slack at 5 GHz (ps)"], rows,
        title="Ablation — static timing (paper operates at 5 GHz)",
    )


# ----------------------------------------------------------------------
# Code-cost sweep
# ----------------------------------------------------------------------
@dataclass
class CodeCostResult:
    rows: List[List[object]]


def run_code_cost_study() -> CodeCostResult:
    """Price the heavier alternatives the paper argues against."""
    candidates = [
        bch_15_11(),
        bch_15_7(),
        extend_with_overall_parity(hamming_code(5)),  # (32,26)+parity ~ Ref. [14] style
    ]
    rows: List[List[object]] = []
    for design in paper_designs():
        summary = summarize_circuit(design.netlist, name=design.display_name)
        rows.append([
            summary.name, design.code.n, design.code.k,
            summary.jj_count, round(summary.static_power_uw, 1),
            round(summary.area_mm2, 3),
        ])
    for code in candidates:
        encoder = build_encoder_for_code(code)
        summary = summarize_circuit(encoder.netlist, name=code.name)
        rows.append([
            summary.name, code.n, code.k,
            summary.jj_count, round(summary.static_power_uw, 1),
            round(summary.area_mm2, 3),
        ])
    return CodeCostResult(rows=rows)


def render_code_cost_study(result: CodeCostResult) -> str:
    return format_table(
        ["Encoder", "n", "k", "JJ", "Power (uW)", "Area (mm2)"],
        result.rows,
        title="Ablation — encoder cost of heavier codes "
              "(BCH per Section II; SEC-DED(33,26) in the spirit of Ref. [14])",
    )


# ----------------------------------------------------------------------
@dataclass
class AblationsResult:
    spread: SpreadSweepResult
    decoders: DecoderSweepResult
    frequency: FrequencyResult
    code_cost: CodeCostResult


def run(
    n_chips: int = 400,
    seed: int = 7,
    engine: Optional[MonteCarloEngine] = None,
) -> AblationsResult:
    engine = engine or MonteCarloEngine()
    return AblationsResult(
        spread=run_spread_sweep(n_chips=n_chips, seed=seed, engine=engine),
        decoders=run_decoder_sweep(n_chips=n_chips, seed=seed + 1, engine=engine),
        frequency=run_frequency_study(),
        code_cost=run_code_cost_study(),
    )


def render(result: AblationsResult) -> str:
    return "\n\n".join([
        render_spread_sweep(result.spread),
        render_decoder_sweep(result.decoders),
        render_frequency_study(result.frequency),
        render_code_cost_study(result.code_cost),
    ])
