"""Room-temperature CMOS receiver (comparator + sampler).

"CMOS amplifier circuits (not shown) may be included on the CMOS chip
to boost the amplitude of the received signals" (paper Fig. 1
caption).  The model is a thresholding comparator with input-referred
noise; its decision-error probabilities are Gaussian Q-function tails,
which :func:`repro.link.channel.link_budget_channel` turns into an
asymmetric binary channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.errors import DimensionError
from repro.utils.rng import RandomState, as_generator


@dataclass(frozen=True)
class CmosReceiver:
    """Threshold receiver on the warm side.

    Attributes
    ----------
    input_noise_mv_rms:
        Input-referred noise of the comparator/amplifier chain.
    threshold_mv:
        Decision threshold; ``None`` places it mid-eye per link budget.
    """

    input_noise_mv_rms: float = 0.35
    threshold_mv: float | None = None

    def decision_threshold(self, low_mv: float, high_mv: float) -> float:
        """The threshold actually used for a given eye."""
        if self.threshold_mv is not None:
            return self.threshold_mv
        return 0.5 * (low_mv + high_mv)

    def flip_probabilities(
        self, low_mv: float, high_mv: float, extra_noise_mv_rms: float = 0.0
    ) -> tuple[float, float]:
        """(P(0->1), P(1->0)) for the given received levels.

        ``extra_noise_mv_rms`` adds cable/driver noise in quadrature
        with the receiver's own.
        """
        if high_mv <= low_mv:
            # Collapsed eye: the comparator output is a coin flip.
            return 0.5, 0.5
        sigma = float(np.hypot(self.input_noise_mv_rms, extra_noise_mv_rms))
        threshold = self.decision_threshold(low_mv, high_mv)
        if sigma <= 0:
            p01 = 0.0 if low_mv < threshold else 1.0
            p10 = 0.0 if high_mv > threshold else 1.0
            return p01, p10
        p01 = float(norm.sf((threshold - low_mv) / sigma))
        p10 = float(norm.cdf((threshold - high_mv) / sigma))
        return p01, p10

    def decide_batch(
        self,
        received_mv: np.ndarray,
        low_mv: float,
        high_mv: float,
        extra_noise_mv_rms: float = 0.0,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Slice a batch of analog samples into bits, noise included.

        The vectorised waveform-level receiver used by the frame-stream
        pipeline: Gaussian noise (the comparator's input-referred noise
        combined in quadrature with ``extra_noise_mv_rms``) is added to
        every sample and the result is compared against
        :meth:`decision_threshold` in one pass.

        Parameters
        ----------
        received_mv : numpy.ndarray
            ``(batch, n)`` array of received analog levels in mV (after
            cable attenuation).
        low_mv, high_mv : float
            Nominal received levels for a transmitted 0 and 1; they set
            the decision threshold when :attr:`threshold_mv` is None.
        extra_noise_mv_rms : float, optional
            Cable/driver noise added in quadrature with the receiver's
            own input-referred noise.
        random_state : int, numpy.random.Generator or None, optional
            Noise source; see :func:`repro.utils.rng.as_generator`.

        Returns
        -------
        numpy.ndarray
            ``(batch, n)`` ``uint8`` array of sliced bits.
        """
        samples = np.asarray(received_mv, dtype=float)
        if samples.ndim != 2:
            raise DimensionError(
                f"expected a (batch, n) sample array, got {samples.shape}"
            )
        rng = as_generator(random_state)
        if high_mv <= low_mv:
            # Collapsed eye: match flip_probabilities — a coin flip per bit.
            return rng.integers(0, 2, size=samples.shape, dtype=np.uint8)
        sigma = float(np.hypot(self.input_noise_mv_rms, extra_noise_mv_rms))
        if sigma > 0:
            samples = samples + rng.normal(0.0, sigma, size=samples.shape)
        threshold = self.decision_threshold(low_mv, high_mv)
        return (samples > threshold).astype(np.uint8)

    def decide_soft_batch(
        self,
        received_mv: np.ndarray,
        low_mv: float,
        high_mv: float,
        extra_noise_mv_rms: float = 0.0,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Soft counterpart of :meth:`decide_batch`: confidences, not bits.

        Instead of committing each noisy sample to 0/1 at the
        threshold, the distance to the threshold is normalised by the
        half-eye into a BPSK-style confidence: +1 at the nominal low
        level, -1 at the nominal high level, 0 exactly on the
        threshold.  Hard-slicing the result (``confidence < 0``) is
        bit-identical to :meth:`decide_batch` for the same noise draws,
        so hard and soft receivers can be compared on the very same
        channel realisation.

        Parameters
        ----------
        received_mv : numpy.ndarray
            ``(batch, n)`` array of received analog levels in mV.
        low_mv, high_mv : float
            Nominal received levels for a transmitted 0 and 1.
        extra_noise_mv_rms : float, optional
            Cable/driver noise added in quadrature with the receiver's
            own input-referred noise.
        random_state : int, numpy.random.Generator or None, optional
            Noise source; see :func:`repro.utils.rng.as_generator`.

        Returns
        -------
        numpy.ndarray
            ``(batch, n)`` float64 confidences.
        """
        samples = np.asarray(received_mv, dtype=float)
        if samples.ndim != 2:
            raise DimensionError(
                f"expected a (batch, n) sample array, got {samples.shape}"
            )
        rng = as_generator(random_state)
        if high_mv <= low_mv:
            # Collapsed eye: sign-only coin flips (no reliability), with
            # the same draw pattern as decide_batch's coin flip.
            bits = rng.integers(0, 2, size=samples.shape, dtype=np.uint8)
            return 1.0 - 2.0 * bits.astype(np.float64)
        sigma = float(np.hypot(self.input_noise_mv_rms, extra_noise_mv_rms))
        if sigma > 0:
            samples = samples + rng.normal(0.0, sigma, size=samples.shape)
        threshold = self.decision_threshold(low_mv, high_mv)
        half_eye = 0.5 * (high_mv - low_mv)
        return (threshold - samples) / half_eye
