"""AWGN flux channel: per-bit soft confidences from noisy flux windows.

The SFQ driver integrates ~one flux quantum per transmitted 1 and ~zero
per transmitted 0 into each bit window; thermal and amplifier noise
smear that integral.  :class:`AwgnFluxChannel` models the smearing as
additive white Gaussian noise on the flux amplitude and emits per-bit
*confidences* in the BPSK convention the soft decoders consume
(positive = looks like 0, magnitude = reliability).  The scalar
reference for the flux -> confidence map is
:func:`repro.coding.decoders.soft.soft_confidences_from_flux`; this
class is its vectorised, noise-generating counterpart for whole frame
batches.

A hard receiver slicing the same windows at the mid-eye threshold is
exactly ``confidence < 0``, which is what makes hard-vs-soft coding
gain comparisons (``experiments/soft_gain.py``) paired: both decision
policies see the very same noise draws.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.coding.decoders.soft import soft_confidences_from_flux
from repro.utils.rng import RandomState, as_generator


@dataclass(frozen=True)
class AwgnFluxChannel:
    """Additive-Gaussian noise on the per-window flux integral.

    Attributes
    ----------
    sigma:
        Noise RMS as a fraction of the full flux-quantum amplitude
        (``sigma=0.3`` means the window integral wobbles by 30% of the
        0-to-1 eye).
    amplitude_scale:
        PPV-style scaling of the full flux amplitude (1.0 = nominal),
        forwarded to the flux -> confidence normalisation.
    """

    sigma: float = 0.0
    amplitude_scale: float = 1.0

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if self.amplitude_scale <= 0:
            raise ValueError(
                f"amplitude_scale must be positive, got {self.amplitude_scale}"
            )

    def transmit_soft(
        self, codewords: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        """Per-bit confidences for a ``(batch, n)`` codeword array.

        Each bit's flux window integrates to ``full * bit`` plus
        Gaussian noise of RMS ``full * sigma``, then normalises through
        :func:`soft_confidences_from_flux`: a clean 0 maps to +1, a
        clean 1 to -1.

        Parameters
        ----------
        codewords : numpy.ndarray
            ``(batch, n)`` array of 0/1 transmitted bits.
        random_state : int, numpy.random.Generator or None, optional
            Noise source; see :func:`repro.utils.rng.as_generator`.

        Returns
        -------
        numpy.ndarray
            ``(batch, n)`` float64 confidences.
        """
        from repro.coding.decoders.soft import full_flux_amplitude_uv_ps

        bits = np.asarray(codewords, dtype=np.uint8)
        if bits.ndim != 2:
            raise ValueError(f"expected a (batch, n) bit array, got {bits.shape}")
        full = full_flux_amplitude_uv_ps(self.amplitude_scale)
        flux = bits.astype(np.float64) * full
        if self.sigma > 0:
            rng = as_generator(random_state)
            flux = flux + rng.normal(0.0, self.sigma * full, size=flux.shape)
        return soft_confidences_from_flux(flux, amplitude_scale=self.amplitude_scale)

    @staticmethod
    def harden(confidences: np.ndarray) -> np.ndarray:
        """Mid-eye hard slice of a confidence array (``conf < 0`` -> 1)."""
        return (np.asarray(confidences, dtype=np.float64) < 0).astype(np.uint8)

    def transmit_hard(
        self, codewords: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        """Hard-sliced bits after the same noise as :meth:`transmit_soft`."""
        return self.harden(self.transmit_soft(codewords, random_state=random_state))

    def flip_probability(self) -> float:
        """Hard-decision crossover probability of this channel.

        The mid-eye slicer misreads a bit when the Gaussian noise
        crosses half the eye: ``Q(1 / (2 sigma))``.
        """
        if self.sigma == 0:
            return 0.0
        return float(norm.sf(0.5 / self.sigma))
