"""Detect-and-retransmit (ARQ) on top of the error flags.

Fig. 1 routes "error flags" out of the decoder — which only pays off if
the system *does* something with them.  This module models the obvious
policy: a detected-uncorrectable word triggers a retransmission, turning
the extended code's detection capability into delivered-message
reliability at the price of throughput.

``ArqLink.run`` plays a message stream against a chip's fault pattern
and reports goodput (accepted correct messages per slot), the residual
error rate (wrong messages *accepted*), and the retransmission rate —
the quantities needed to compare FEC-only (Hamming(7,4)), hybrid
SEC-DED+ARQ (Hamming(8,4)) and detection-oriented policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.encoders.designs import EncoderDesign
from repro.sfq.faults import ChipFaults, FaultSimulator
from repro.utils.rng import RandomState, as_generator


@dataclass
class ArqResult:
    """Outcome of one ARQ session."""

    offered_messages: int
    slots_used: int
    delivered_correct: int
    delivered_wrong: int
    retransmissions: int
    gave_up: int

    @property
    def goodput(self) -> float:
        """Correct messages delivered per channel slot."""
        if self.slots_used == 0:
            return 0.0
        return self.delivered_correct / self.slots_used

    @property
    def residual_error_rate(self) -> float:
        """Wrong messages among *accepted* ones (silent failures)."""
        accepted = self.delivered_correct + self.delivered_wrong
        if accepted == 0:
            return 0.0
        return self.delivered_wrong / accepted


class ArqLink:
    """Stop-and-wait ARQ over one encoder design and one chip."""

    def __init__(
        self,
        design: EncoderDesign,
        max_retries: int = 3,
        decoder_strategy: Optional[str] = None,
    ):
        if design.code is None:
            raise ValueError("ARQ needs a coded design (error flags)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.design = design
        self.simulator = FaultSimulator(design.netlist)
        self.decoder = design.decoder(decoder_strategy)
        self.max_retries = max_retries

    def run(
        self,
        messages: np.ndarray,
        chip_faults: Optional[ChipFaults] = None,
        random_state: RandomState = None,
    ) -> ArqResult:
        """Deliver a ``(batch, k)`` stream with retransmissions."""
        rng = as_generator(random_state)
        msgs = np.asarray(messages, dtype=np.uint8)
        slots = retransmissions = correct = wrong = gave_up = 0
        for msg in msgs:
            delivered = None
            for attempt in range(self.max_retries + 1):
                slots += 1
                received = self.simulator.run(
                    msg.reshape(1, -1), chip_faults, rng
                )[0]
                result = self.decoder.decode(received)
                if not result.detected_uncorrectable:
                    delivered = result.message
                    break
                retransmissions += 1
            if delivered is None:
                # Accept the last fallback estimate after exhausting retries.
                delivered = result.message
                gave_up += 1
            if (delivered == msg).all():
                correct += 1
            else:
                wrong += 1
        return ArqResult(
            offered_messages=len(msgs),
            slots_used=slots,
            delivered_correct=correct,
            delivered_wrong=wrong,
            retransmissions=retransmissions,
            gave_up=gave_up,
        )
