"""Cryogenic output data link components (paper Fig. 1).

Models the analog path from the SFQ chip to the room-temperature
receiver: the SFQ-to-DC output driver (a Suzuki-stack style amplifier),
the cryogenic cable between thermal stages, and the CMOS comparator.
The end product is a :class:`~repro.link.channel.BinaryChannel` — the
per-channel bit-flip probabilities induced by thermal noise and
attenuation, which the ablation benches superimpose on the PPV faults.
"""

from repro.link.driver import SuzukiStackDriver
from repro.link.cable import CryogenicCable
from repro.link.receiver import CmosReceiver
from repro.link.awgn import AwgnFluxChannel
from repro.link.burst import (
    BurstyFluxChannel,
    GilbertElliottChannel,
    bursty_flux_reference,
    gilbert_elliott_reference,
)
from repro.link.channel import (
    BinaryChannel,
    FrameStreamPipeline,
    FrameStreamResult,
    link_budget_channel,
)
from repro.link.framing import ArqLink, ArqResult

__all__ = [
    "SuzukiStackDriver",
    "CryogenicCable",
    "CmosReceiver",
    "AwgnFluxChannel",
    "GilbertElliottChannel",
    "BurstyFluxChannel",
    "gilbert_elliott_reference",
    "bursty_flux_reference",
    "BinaryChannel",
    "FrameStreamPipeline",
    "FrameStreamResult",
    "link_budget_channel",
    "ArqLink",
    "ArqResult",
]
