"""Cryogenic cable between thermal stages.

The cables connecting the 4.2 K stage to 50-300 K trade heat load
against electrical quality (paper Section I, Refs. [19]-[22]): thin
lossy lines attenuate the signal and pick up thermal noise that grows
with the temperature of the warm end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Boltzmann constant (J/K).
BOLTZMANN = 1.380649e-23


@dataclass(frozen=True)
class CryogenicCable:
    """A point-to-point cryo cable from 4.2 K to a warmer stage.

    Attributes
    ----------
    attenuation_db:
        End-to-end attenuation at the signalling bandwidth.
    warm_temperature_k:
        Temperature of the warm end (50-300 K in Fig. 1).
    impedance_ohm:
        Characteristic impedance (50 ohm typical).
    bandwidth_ghz:
        Noise-equivalent bandwidth of the link.
    """

    attenuation_db: float = 3.0
    warm_temperature_k: float = 300.0
    impedance_ohm: float = 50.0
    bandwidth_ghz: float = 10.0

    def __post_init__(self):
        if self.attenuation_db < 0:
            raise ValueError("attenuation_db must be >= 0")
        if self.warm_temperature_k <= 0:
            raise ValueError("warm_temperature_k must be positive")

    @property
    def gain(self) -> float:
        """Linear voltage gain (< 1)."""
        return 10.0 ** (-self.attenuation_db / 20.0)

    def thermal_noise_mv_rms(self) -> float:
        """Johnson-Nyquist noise referred to the warm end, in mV RMS.

        Uses the warm-end temperature as the effective noise
        temperature — pessimistic for a cable whose cold end sits at
        4.2 K, appropriate for a budget.
        """
        v2 = 4.0 * BOLTZMANN * self.warm_temperature_k * self.impedance_ohm
        v2 *= self.bandwidth_ghz * 1e9
        return float(np.sqrt(v2) * 1e3)

    def propagate_level_mv(self, level_mv: float) -> float:
        """Signal level after attenuation."""
        return level_mv * self.gain
