"""SFQ-to-DC output driver (Suzuki stack) behavioural model.

"SFQ pulses are amplified and converted to DC voltages — up to 1 V —
by specialized superconducting output drivers and semiconductor
amplifiers" (paper Section I, Refs. [5]-[8]).  The behavioural model
captures what the link budget needs:

* a nominal output swing (mV) for logical 1 vs 0;
* swing degradation under PPV (a stack with degraded bias margins
  delivers less amplitude before failing outright);
* the driver's own output noise.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SuzukiStackDriver:
    """Latching SFQ-to-DC driver at the 4.2 K stage.

    Attributes
    ----------
    swing_mv:
        Nominal high-level output voltage in millivolts (Suzuki stacks
        deliver a few to tens of mV; semiconductor post-amps take it to
        ~1 V — the post-amp gain is folded into the receiver model).
    low_mv:
        Residual low-level output.
    output_noise_mv_rms:
        RMS output noise of the driver itself at 4.2 K.
    margin_sensitivity:
        Fractional swing loss per unit of relative parameter deviation
        (e.g. 2.0 means a 10 % bias deviation costs 20 % of the swing).
    """

    swing_mv: float = 20.0
    low_mv: float = 0.4
    output_noise_mv_rms: float = 0.05
    margin_sensitivity: float = 2.0

    def __post_init__(self):
        if self.swing_mv <= 0:
            raise ValueError("swing_mv must be positive")
        if not 0 <= self.low_mv < self.swing_mv:
            raise ValueError("low_mv must lie in [0, swing_mv)")

    def output_high_mv(self, deviation: float = 0.0) -> float:
        """High-level output under a fractional parameter deviation."""
        loss = self.margin_sensitivity * abs(deviation)
        return max(self.swing_mv * (1.0 - loss), self.low_mv)

    def output_low_mv(self, deviation: float = 0.0) -> float:
        """Low-level output (weakly affected by PPV)."""
        return self.low_mv * (1.0 + abs(deviation))

    def eye_opening_mv(self, deviation: float = 0.0) -> float:
        """Vertical eye opening at the driver output."""
        return self.output_high_mv(deviation) - self.output_low_mv(deviation)
