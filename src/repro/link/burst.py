"""Burst-error channels: correlated flips from two-state flux dynamics.

Every channel the stack modelled before this module is *memoryless* —
:class:`~repro.link.channel.BinaryChannel` flips bits independently and
:class:`~repro.link.awgn.AwgnFluxChannel` draws independent Gaussian
noise per window.  The failure mode that motivates lightweight encoders
on superconducting links is different: a trapped flux quantum or a
thermal event degrades the link for a *dwell time*, so errors arrive in
bursts.  The classic model for that regime is the **Gilbert–Elliott
channel** — a hidden two-state Markov chain (``good``/``bad``) whose
state selects the per-bit flip probability — and its soft counterpart
here modulates the AWGN noise RMS instead of the flip probability.

Both channels expose the same two-level API as the rest of the link
layer:

* a vectorised batch kernel (:meth:`GilbertElliottChannel.transmit_batch`,
  :meth:`BurstyFluxChannel.transmit_soft_batch`) that evolves every
  frame's state chain in parallel across the batch axis, and
* a pure scalar reference (:func:`gilbert_elliott_reference`,
  :func:`bursty_flux_reference`) — a per-bit Python loop over the *same*
  pre-drawn uniforms — that the batch kernel is **bit-identical** to
  (asserted at every measured size by ``benchmarks/bench_burst.py``).

Draw discipline: a transmit call consumes exactly two ``rng`` blocks in
a fixed order — state uniforms, then noise draws — each of the frame
shape.  Paired experiments (``experiments/burst.py``) rely on this:
two arms that pre-draw the blocks once see identical channel
realisations, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.coding.decoders.soft import (
    full_flux_amplitude_uv_ps,
    soft_confidences_from_flux,
)
from repro.link.awgn import AwgnFluxChannel
from repro.utils.rng import RandomState, as_generator, check_probability

#: State labels of the hidden chain (index 0 = good, 1 = bad).
STATES: Tuple[str, str] = ("good", "bad")


def _stationary_bad_probability(p_g2b: float, p_b2g: float) -> float:
    """Stationary probability of the bad state, ``p_g2b/(p_g2b+p_b2g)``.

    A frozen chain (both transition probabilities zero) is defined to
    start — and stay — in the good state.
    """
    total = p_g2b + p_b2g
    if total == 0.0:
        return 0.0
    return p_g2b / total


def _evolve_states(
    state_draws: np.ndarray, p_g2b: float, p_b2g: float, stationary_bad: float
) -> np.ndarray:
    """Boolean bad-state matrix from a ``(batch, n)`` block of uniforms.

    Column 0's draw selects each frame's initial state from the
    stationary distribution (``draw < stationary_bad`` -> bad); column
    ``j >= 1`` applies the transition from column ``j - 1``'s state
    (from bad: stay iff ``draw >= p_b2g``; from good: leave iff
    ``draw < p_g2b``).  The per-bit loop is over the (short) frame
    axis, vectorised across the batch axis, and performs exactly the
    comparisons of the scalar references — which is what makes batch
    and scalar paths bit-identical.
    """
    draws = np.asarray(state_draws, dtype=np.float64)
    bad = np.empty(draws.shape, dtype=bool)
    if draws.shape[1] == 0:
        return bad
    bad[:, 0] = draws[:, 0] < stationary_bad
    for j in range(1, draws.shape[1]):
        prev = bad[:, j - 1]
        bad[:, j] = np.where(prev, draws[:, j] >= p_b2g, draws[:, j] < p_g2b)
    return bad


@dataclass(frozen=True)
class GilbertElliottChannel:
    """Two-state Markov burst channel (Gilbert–Elliott).

    A hidden chain visits ``good`` and ``bad`` states; each transmitted
    bit flips with the probability of the current state.  Dwell times
    are geometric: the mean burst (bad dwell) length is ``1 / p_b2g``
    and the mean gap (good dwell) length is ``1 / p_g2b``.  The initial
    state of every frame is drawn from the stationary distribution, so
    frames are exchangeable and the average flip probability is
    independent of frame length.

    Attributes
    ----------
    p_good:
        Flip probability while the chain is in the good state.
    p_bad:
        Flip probability while the chain is in the bad state.
    p_g2b:
        Per-bit probability of a good -> bad transition.
    p_b2g:
        Per-bit probability of a bad -> good transition (the reciprocal
        of the mean burst length).
    """

    p_good: float = 0.0
    p_bad: float = 0.5
    p_g2b: float = 0.05
    p_b2g: float = 0.25

    def __post_init__(self):
        for name in ("p_good", "p_bad", "p_g2b", "p_b2g"):
            check_probability(getattr(self, name), name)

    @classmethod
    def from_burst_profile(
        cls,
        burst_len: float,
        density: float,
        p_bad: float = 0.5,
        p_good: float = 0.0,
    ) -> "GilbertElliottChannel":
        """Build a channel from its burst geometry instead of raw rates.

        Parameters
        ----------
        burst_len:
            Mean burst (bad-state dwell) length in bits; must be >= 1.
            Sets ``p_b2g = 1 / burst_len``.
        density:
            Stationary probability of the bad state, in [0, 1).  The
            good -> bad rate is derived so the chain spends exactly this
            fraction of bits in the bad state — sweeping ``burst_len``
            at fixed ``density`` changes the error *correlation* while
            keeping the average raw flip rate constant, which is the
            comparison the burst-resilience experiment makes.
        p_bad, p_good:
            Per-state flip probabilities.
        """
        if burst_len < 1:
            raise ValueError(f"burst_len must be >= 1, got {burst_len}")
        if not 0.0 <= density < 1.0:
            raise ValueError(f"density must lie in [0, 1), got {density}")
        p_b2g = 1.0 / float(burst_len)
        p_g2b = density / (1.0 - density) * p_b2g
        if p_g2b > 1.0:
            raise ValueError(
                f"density {density} is unreachable with burst_len {burst_len} "
                f"(would need p_g2b = {p_g2b:.3f} > 1)"
            )
        return cls(p_good=p_good, p_bad=p_bad, p_g2b=p_g2b, p_b2g=p_b2g)

    # -- derived geometry ----------------------------------------------
    def stationary_bad_probability(self) -> float:
        """Long-run fraction of bits spent in the bad state."""
        return _stationary_bad_probability(self.p_g2b, self.p_b2g)

    def mean_burst_length(self) -> float:
        """Mean bad-state dwell in bits (``inf`` when bursts never end)."""
        return float("inf") if self.p_b2g == 0.0 else 1.0 / self.p_b2g

    def mean_gap_length(self) -> float:
        """Mean good-state dwell in bits (``inf`` when bursts never start)."""
        return float("inf") if self.p_g2b == 0.0 else 1.0 / self.p_g2b

    def average_flip_probability(self) -> float:
        """Stationary per-bit flip probability (the memoryless equivalent)."""
        pi_bad = self.stationary_bad_probability()
        return (1.0 - pi_bad) * self.p_good + pi_bad * self.p_bad

    def is_noiseless(self) -> bool:
        """True iff no reachable state ever flips a bit.

        The bad state is unreachable exactly when ``p_g2b == 0`` (the
        stationary initial draw then never lands there either).
        """
        return self.p_good == 0.0 and (self.p_bad == 0.0 or self.p_g2b == 0.0)

    # -- transmission --------------------------------------------------
    def apply_draws(
        self, bits: np.ndarray, state_draws: np.ndarray, flip_draws: np.ndarray
    ) -> np.ndarray:
        """Corrupt ``(batch, n)`` bits from pre-drawn uniform blocks.

        The pure (draw-free) core of :meth:`transmit_batch`: given the
        state uniforms and the flip uniforms, the output is a
        deterministic function — which is what lets paired experiment
        arms and the scalar reference consume identical draws.

        Parameters
        ----------
        bits : numpy.ndarray
            ``(batch, n)`` array of 0/1 transmitted bits.
        state_draws, flip_draws : numpy.ndarray
            ``(batch, n)`` uniforms in [0, 1); see
            :func:`_evolve_states` for how ``state_draws`` is consumed.

        Returns
        -------
        numpy.ndarray
            ``(batch, n)`` ``uint8`` received bits.
        """
        words = np.asarray(bits, dtype=np.uint8)
        if words.ndim != 2:
            raise ValueError(f"expected a (batch, n) bit array, got {words.shape}")
        if state_draws.shape != words.shape or flip_draws.shape != words.shape:
            raise ValueError(
                f"draw blocks must match the frame shape {words.shape}, got "
                f"{state_draws.shape} / {flip_draws.shape}"
            )
        bad = _evolve_states(
            state_draws, self.p_g2b, self.p_b2g, self.stationary_bad_probability()
        )
        flip_probability = np.where(bad, self.p_bad, self.p_good)
        flips = np.asarray(flip_draws, dtype=np.float64) < flip_probability
        return words ^ flips.astype(np.uint8)

    def transmit_batch(
        self, bits: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        """Corrupt a ``(batch, n)`` bit array with bursty flips.

        Consumes exactly two uniform blocks of the frame shape from the
        generator — state draws, then flip draws — and applies
        :meth:`apply_draws`.  Bit-identical to running
        :func:`gilbert_elliott_reference` row by row on the same
        blocks.

        Parameters
        ----------
        bits : numpy.ndarray
            ``(batch, n)`` array of 0/1 transmitted bits.
        random_state : int, numpy.random.Generator or None, optional
            Randomness for the state chain and the flips.

        Returns
        -------
        numpy.ndarray
            ``(batch, n)`` ``uint8`` received bits.
        """
        words = np.asarray(bits, dtype=np.uint8)
        if words.ndim != 2:
            raise ValueError(f"expected a (batch, n) bit array, got {words.shape}")
        rng = as_generator(random_state)
        state_draws = rng.random(words.shape)
        flip_draws = rng.random(words.shape)
        return self.apply_draws(words, state_draws, flip_draws)

    def transmit(
        self, bits: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        """Alias of :meth:`transmit_batch` matching the
        :class:`~repro.link.channel.BinaryChannel` interface, so a
        Gilbert–Elliott channel drops straight into
        :class:`~repro.link.channel.FrameStreamPipeline`."""
        return self.transmit_batch(bits, random_state=random_state)


def gilbert_elliott_reference(
    bits: np.ndarray,
    state_draws: np.ndarray,
    flip_draws: np.ndarray,
    channel: GilbertElliottChannel,
) -> np.ndarray:
    """Scalar per-bit reference of :meth:`GilbertElliottChannel.apply_draws`.

    Walks one frame's state chain in a plain Python loop, performing
    the same comparisons on the same uniforms as the vectorised kernel.
    This is the ground truth ``benchmarks/bench_burst.py`` asserts the
    batch path against, and the honest baseline its speedup floor is
    measured over.

    Parameters
    ----------
    bits : numpy.ndarray
        ``(n,)`` array of 0/1 transmitted bits (one frame).
    state_draws, flip_draws : numpy.ndarray
        ``(n,)`` uniforms, one row of the blocks
        :meth:`~GilbertElliottChannel.transmit_batch` draws.
    channel : GilbertElliottChannel
        The channel parameters.

    Returns
    -------
    numpy.ndarray
        ``(n,)`` ``uint8`` received bits.
    """
    word = np.asarray(bits, dtype=np.uint8).copy()
    stationary_bad = channel.stationary_bad_probability()
    bad = False
    for j in range(word.shape[0]):
        if j == 0:
            bad = bool(state_draws[0] < stationary_bad)
        elif bad:
            bad = bool(state_draws[j] >= channel.p_b2g)
        else:
            bad = bool(state_draws[j] < channel.p_g2b)
        flip_probability = channel.p_bad if bad else channel.p_good
        if flip_draws[j] < flip_probability:
            word[j] ^= 1
    return word


@dataclass(frozen=True)
class BurstyFluxChannel:
    """Correlated-flux AWGN: burst-modulated noise RMS on flux windows.

    The soft-output sibling of :class:`GilbertElliottChannel`: the same
    hidden two-state chain selects the Gaussian noise RMS of each bit's
    flux-window integral — quiet windows in the good state, smeared
    windows while a flux-trapping or thermal event dwells — and the
    noisy integrals normalise to BPSK confidences through
    :func:`repro.coding.decoders.soft.soft_confidences_from_flux`,
    exactly like the memoryless
    :class:`~repro.link.awgn.AwgnFluxChannel`.

    Attributes
    ----------
    sigma_good:
        Noise RMS (fraction of the flux eye) in the good state.
    sigma_bad:
        Noise RMS in the bad state.
    p_g2b, p_b2g:
        State-chain transition probabilities per bit, as in
        :class:`GilbertElliottChannel`.
    amplitude_scale:
        PPV-style scaling of the full flux amplitude (1.0 = nominal).
    """

    sigma_good: float = 0.1
    sigma_bad: float = 0.6
    p_g2b: float = 0.05
    p_b2g: float = 0.25
    amplitude_scale: float = 1.0

    def __post_init__(self):
        if self.sigma_good < 0 or self.sigma_bad < 0:
            raise ValueError("sigma_good and sigma_bad must be >= 0")
        check_probability(self.p_g2b, "p_g2b")
        check_probability(self.p_b2g, "p_b2g")
        if self.amplitude_scale <= 0:
            raise ValueError(
                f"amplitude_scale must be positive, got {self.amplitude_scale}"
            )

    def stationary_bad_probability(self) -> float:
        """Long-run fraction of bits spent in the bad (noisy) state."""
        return _stationary_bad_probability(self.p_g2b, self.p_b2g)

    def apply_draws(
        self, codewords: np.ndarray, state_draws: np.ndarray, noise: np.ndarray
    ) -> np.ndarray:
        """Confidences from pre-drawn uniforms and standard normals.

        The pure core of :meth:`transmit_soft_batch`: ``state_draws``
        evolves the chain (same kernel as the hard channel), ``noise``
        holds *standard* normal draws that are scaled by the per-bit
        state's sigma.

        Parameters
        ----------
        codewords : numpy.ndarray
            ``(batch, n)`` array of 0/1 transmitted bits.
        state_draws : numpy.ndarray
            ``(batch, n)`` uniforms in [0, 1).
        noise : numpy.ndarray
            ``(batch, n)`` standard normal draws.

        Returns
        -------
        numpy.ndarray
            ``(batch, n)`` float64 BPSK confidences.
        """
        bits = np.asarray(codewords, dtype=np.uint8)
        if bits.ndim != 2:
            raise ValueError(f"expected a (batch, n) bit array, got {bits.shape}")
        if state_draws.shape != bits.shape or noise.shape != bits.shape:
            raise ValueError(
                f"draw blocks must match the frame shape {bits.shape}, got "
                f"{state_draws.shape} / {noise.shape}"
            )
        bad = _evolve_states(
            state_draws, self.p_g2b, self.p_b2g, self.stationary_bad_probability()
        )
        sigma = np.where(bad, self.sigma_bad, self.sigma_good)
        full = full_flux_amplitude_uv_ps(self.amplitude_scale)
        flux = bits.astype(np.float64) * full + noise * sigma * full
        return soft_confidences_from_flux(flux, amplitude_scale=self.amplitude_scale)

    def transmit_soft_batch(
        self, codewords: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        """Per-bit confidences for a ``(batch, n)`` codeword array.

        Consumes one uniform block (state draws) and one standard
        normal block from the generator, in that order, then applies
        :meth:`apply_draws` — bit-identical to
        :func:`bursty_flux_reference` row by row on the same blocks.

        Parameters
        ----------
        codewords : numpy.ndarray
            ``(batch, n)`` array of 0/1 transmitted bits.
        random_state : int, numpy.random.Generator or None, optional
            Randomness for the state chain and the flux noise.

        Returns
        -------
        numpy.ndarray
            ``(batch, n)`` float64 confidences (positive = looks like
            0, magnitude = reliability).
        """
        bits = np.asarray(codewords, dtype=np.uint8)
        if bits.ndim != 2:
            raise ValueError(f"expected a (batch, n) bit array, got {bits.shape}")
        rng = as_generator(random_state)
        state_draws = rng.random(bits.shape)
        noise = rng.normal(0.0, 1.0, size=bits.shape)
        return self.apply_draws(bits, state_draws, noise)

    #: Mid-eye hard slice, shared with the memoryless flux channel so
    #: the two channels' hard decisions can never drift apart.
    harden = staticmethod(AwgnFluxChannel.harden)

    def transmit_hard_batch(
        self, codewords: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        """Hard-sliced bits after the same noise as :meth:`transmit_soft_batch`."""
        return self.harden(
            self.transmit_soft_batch(codewords, random_state=random_state)
        )


def bursty_flux_reference(
    codeword: np.ndarray,
    state_draws: np.ndarray,
    noise: np.ndarray,
    channel: BurstyFluxChannel,
) -> np.ndarray:
    """Scalar per-bit reference of :meth:`BurstyFluxChannel.apply_draws`.

    Same contract as :func:`gilbert_elliott_reference`, for the soft
    channel: one frame, a plain Python state walk, one confidence per
    bit computed through the scalar
    :func:`~repro.coding.decoders.soft.soft_confidences_from_flux` map.

    Parameters
    ----------
    codeword : numpy.ndarray
        ``(n,)`` array of 0/1 transmitted bits (one frame).
    state_draws, noise : numpy.ndarray
        ``(n,)`` uniforms and standard normals, one row of the blocks
        :meth:`~BurstyFluxChannel.transmit_soft_batch` draws.
    channel : BurstyFluxChannel
        The channel parameters.

    Returns
    -------
    numpy.ndarray
        ``(n,)`` float64 confidences.
    """
    bits = np.asarray(codeword, dtype=np.uint8)
    stationary_bad = channel.stationary_bad_probability()
    full = full_flux_amplitude_uv_ps(channel.amplitude_scale)
    out = np.empty(bits.shape[0], dtype=np.float64)
    bad = False
    for j in range(bits.shape[0]):
        if j == 0:
            bad = bool(state_draws[0] < stationary_bad)
        elif bad:
            bad = bool(state_draws[j] >= channel.p_b2g)
        else:
            bad = bool(state_draws[j] < channel.p_g2b)
        sigma = channel.sigma_bad if bad else channel.sigma_good
        flux = float(bits[j]) * full + noise[j] * sigma * full
        out[j] = soft_confidences_from_flux(
            np.asarray(flux), amplitude_scale=channel.amplitude_scale
        )
    return out
