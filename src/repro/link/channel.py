"""Binary channel abstraction over the analog link.

:class:`BinaryChannel` applies (possibly asymmetric, possibly
per-channel) bit-flip probabilities to transmitted words;
:func:`link_budget_channel` derives those probabilities from the
driver/cable/receiver models, closing the Fig. 1 signal path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.link.cable import CryogenicCable
from repro.link.driver import SuzukiStackDriver
from repro.link.receiver import CmosReceiver
from repro.utils.rng import RandomState, as_generator, check_probability


@dataclass(frozen=True)
class BinaryChannel:
    """Memoryless binary channel with asymmetric flip probabilities.

    ``p01``/``p10`` may be scalars (shared by all output channels) or
    per-channel arrays.
    """

    p01: Union[float, np.ndarray] = 0.0
    p10: Union[float, np.ndarray] = 0.0

    def __post_init__(self):
        for name, value in (("p01", self.p01), ("p10", self.p10)):
            arr = np.atleast_1d(np.asarray(value, dtype=float))
            if ((arr < 0) | (arr > 1)).any():
                raise ValueError(f"{name} must lie in [0, 1]")

    def transmit(self, bits: np.ndarray, random_state: RandomState = None) -> np.ndarray:
        """Flip bits of a ``(batch, n)`` array independently."""
        rng = as_generator(random_state)
        words = np.asarray(bits, dtype=np.uint8)
        if words.ndim != 2:
            raise ValueError(f"expected a (batch, n) bit array, got {words.shape}")
        p01 = np.broadcast_to(np.asarray(self.p01, dtype=float), words.shape[1:])
        p10 = np.broadcast_to(np.asarray(self.p10, dtype=float), words.shape[1:])
        draws = rng.random(words.shape)
        flip = np.where(words == 0, draws < p01[None, :], draws < p10[None, :])
        return words ^ flip.astype(np.uint8)

    def crossover_probability(self) -> float:
        """Average flip probability assuming equiprobable inputs."""
        return float(
            0.5 * np.mean(np.asarray(self.p01, dtype=float))
            + 0.5 * np.mean(np.asarray(self.p10, dtype=float))
        )

    def is_noiseless(self) -> bool:
        return (
            float(np.max(np.atleast_1d(np.asarray(self.p01)))) == 0.0
            and float(np.max(np.atleast_1d(np.asarray(self.p10)))) == 0.0
        )


def link_budget_channel(
    driver: Optional[SuzukiStackDriver] = None,
    cable: Optional[CryogenicCable] = None,
    receiver: Optional[CmosReceiver] = None,
    driver_deviation: float = 0.0,
) -> BinaryChannel:
    """Derive the per-bit flip probabilities of one output channel.

    Walks the Fig. 1 path: driver swing (optionally degraded by PPV)
    -> cable attenuation + warm-stage thermal noise -> comparator
    decision.
    """
    driver = driver or SuzukiStackDriver()
    cable = cable or CryogenicCable()
    receiver = receiver or CmosReceiver()
    high = cable.propagate_level_mv(driver.output_high_mv(driver_deviation))
    low = cable.propagate_level_mv(driver.output_low_mv(driver_deviation))
    extra = float(
        np.hypot(
            cable.thermal_noise_mv_rms(),
            driver.output_noise_mv_rms * cable.gain,
        )
    )
    p01, p10 = receiver.flip_probabilities(low, high, extra_noise_mv_rms=extra)
    return BinaryChannel(p01=p01, p10=p10)
