"""Binary channel abstraction over the analog link.

:class:`BinaryChannel` applies (possibly asymmetric, possibly
per-channel) bit-flip probabilities to transmitted words;
:func:`link_budget_channel` derives those probabilities from the
driver/cable/receiver models, closing the Fig. 1 signal path; and
:class:`FrameStreamPipeline` runs a whole stream of frames through
encode -> corrupt -> decode as one vectorised batch on the bit-packed
hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.coding.decoders import Decoder, default_decoder_for
from repro.coding.decoders.base import BatchDecodeResult
from repro.coding.linear import LinearBlockCode
from repro.errors import DimensionError
from repro.link.cable import CryogenicCable
from repro.link.driver import SuzukiStackDriver
from repro.link.receiver import CmosReceiver
from repro.utils.rng import RandomState, as_generator, check_probability


@dataclass(frozen=True)
class BinaryChannel:
    """Memoryless binary channel with asymmetric flip probabilities.

    ``p01``/``p10`` may be scalars (shared by all output channels) or
    per-channel arrays.
    """

    p01: Union[float, np.ndarray] = 0.0
    p10: Union[float, np.ndarray] = 0.0

    def __post_init__(self):
        noiseless = True
        for name, value in (("p01", self.p01), ("p10", self.p10)):
            arr = np.atleast_1d(np.asarray(value, dtype=float))
            if ((arr < 0) | (arr > 1)).any():
                raise ValueError(f"{name} must lie in [0, 1]")
            noiseless &= not arr.any()
        # Frozen dataclass: cache the flag so the transmit fast path
        # doesn't re-inspect the probability arrays on every call.
        object.__setattr__(self, "_noiseless", bool(noiseless))

    def transmit(self, bits: np.ndarray, random_state: RandomState = None) -> np.ndarray:
        """Flip bits of a ``(batch, n)`` array independently.

        A noiseless channel (``p01 == p10 == 0`` everywhere) returns a
        copy of the input without drawing any random numbers, so hot
        paths that thread a shared generator through a mix of noisy and
        noiseless channels pay nothing for the latter.  Consequently a
        seeded stream yields the same draws as earlier releases only for
        *noisy* channels; noiseless transmits no longer consume from it.
        """
        words = np.asarray(bits, dtype=np.uint8)
        if words.ndim != 2:
            raise ValueError(f"expected a (batch, n) bit array, got {words.shape}")
        # Shape-check per-channel probabilities even on the fast path, so
        # a misconfigured channel fails loudly regardless of noise level.
        p01 = np.broadcast_to(np.asarray(self.p01, dtype=float), words.shape[1:])
        p10 = np.broadcast_to(np.asarray(self.p10, dtype=float), words.shape[1:])
        if self.is_noiseless():
            return words.copy()
        rng = as_generator(random_state)
        draws = rng.random(words.shape)
        flip = np.where(words == 0, draws < p01[None, :], draws < p10[None, :])
        return words ^ flip.astype(np.uint8)

    def crossover_probability(self) -> float:
        """Average flip probability assuming equiprobable inputs."""
        return float(
            0.5 * np.mean(np.asarray(self.p01, dtype=float))
            + 0.5 * np.mean(np.asarray(self.p10, dtype=float))
        )

    def is_noiseless(self) -> bool:
        """True iff every flip probability is exactly zero.

        Cached at construction; gates the draw-free fast path of
        :meth:`transmit`.
        """
        return self._noiseless


def _received_eye(
    driver: SuzukiStackDriver, cable: CryogenicCable, driver_deviation: float
) -> tuple:
    """Received eye after the cable: ``(low_mv, high_mv, extra_noise_mv_rms)``.

    The shared physics of the Fig. 1 path — driver swing (optionally
    degraded by PPV) -> cable attenuation, with cable thermal noise and
    amplified driver noise combined in quadrature.
    """
    high = cable.propagate_level_mv(driver.output_high_mv(driver_deviation))
    low = cable.propagate_level_mv(driver.output_low_mv(driver_deviation))
    extra = float(
        np.hypot(
            cable.thermal_noise_mv_rms(),
            driver.output_noise_mv_rms * cable.gain,
        )
    )
    return low, high, extra


def link_budget_channel(
    driver: Optional[SuzukiStackDriver] = None,
    cable: Optional[CryogenicCable] = None,
    receiver: Optional[CmosReceiver] = None,
    driver_deviation: float = 0.0,
) -> BinaryChannel:
    """Derive the per-bit flip probabilities of one output channel.

    Walks the Fig. 1 path: driver swing (optionally degraded by PPV)
    -> cable attenuation + warm-stage thermal noise -> comparator
    decision.
    """
    driver = driver or SuzukiStackDriver()
    cable = cable or CryogenicCable()
    receiver = receiver or CmosReceiver()
    low, high, extra = _received_eye(driver, cable, driver_deviation)
    p01, p10 = receiver.flip_probabilities(low, high, extra_noise_mv_rms=extra)
    return BinaryChannel(p01=p01, p10=p10)


@dataclass(frozen=True)
class FrameStreamResult:
    """Everything a frame-stream run produced, aligned row-for-row.

    Attributes
    ----------
    messages : numpy.ndarray
        ``(batch, k)`` transmitted messages.
    codewords : numpy.ndarray
        ``(batch, n)`` transmitted codewords.
    received : numpy.ndarray
        ``(batch, n)`` words after the channel.
    decoded : repro.coding.decoders.BatchDecodeResult
        Per-frame decoder outputs (messages, flags, correction counts).
    """

    messages: np.ndarray
    codewords: np.ndarray
    received: np.ndarray
    decoded: BatchDecodeResult

    def __len__(self) -> int:
        return len(self.messages)

    @property
    def delivered(self) -> np.ndarray:
        """``(batch, k)`` message estimates delivered to the warm side."""
        return self.decoded.messages

    @property
    def message_errors(self) -> np.ndarray:
        """Per-frame booleans: delivered message differs from sent."""
        return (self.decoded.messages != self.messages).any(axis=1)

    @property
    def message_error_rate(self) -> float:
        """Fraction of frames delivered wrong (Fig. 5's MER numerator)."""
        return float(self.message_errors.mean()) if len(self) else 0.0

    @property
    def channel_bit_errors(self) -> np.ndarray:
        """Per-frame count of raw bit flips the channel injected."""
        return (self.received ^ self.codewords).sum(axis=1, dtype=np.int64)

    @property
    def raw_bit_error_rate(self) -> float:
        """Channel bit-flip fraction before any decoding."""
        total = self.codewords.size
        return float(self.channel_bit_errors.sum() / total) if total else 0.0

    @property
    def flagged_rate(self) -> float:
        """Fraction of frames the decoder flagged detected-uncorrectable."""
        if not len(self):
            return 0.0
        return float(self.decoded.detected_uncorrectable.mean())


class FrameStreamPipeline:
    """Vectorised encode -> corrupt -> decode for a stream of frames.

    One object wires the three batched hot paths together: the
    bit-packed :meth:`~repro.coding.linear.LinearBlockCode.encode_batch`,
    the vectorised :meth:`BinaryChannel.transmit`, and the decoder's
    :meth:`~repro.coding.decoders.base.Decoder.decode_batch_detailed`.
    A whole frame stream moves through the link without any per-frame
    Python, which is what makes the Monte-Carlo reliability sweeps and
    the throughput benchmarks feasible at production batch sizes.

    Parameters
    ----------
    code : LinearBlockCode
        The code framing each message.
    decoder : Decoder, optional
        Decoder for the warm side; defaults to the paper's pairing via
        :func:`repro.coding.decoders.default_decoder_for`.
    channel : BinaryChannel, optional
        Bit-flip channel between the stages; defaults to noiseless.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.coding import get_code
    >>> pipe = FrameStreamPipeline(get_code("hamming84"),
    ...                            channel=BinaryChannel(p01=0.01, p10=0.01))
    >>> msgs = np.random.default_rng(0).integers(0, 2, (1000, 4)).astype(np.uint8)
    >>> result = pipe.run(msgs, random_state=1)
    >>> result.delivered.shape
    (1000, 4)
    """

    def __init__(
        self,
        code: LinearBlockCode,
        decoder: Optional[Decoder] = None,
        channel: Optional[BinaryChannel] = None,
    ):
        self.code = code
        self.decoder = decoder if decoder is not None else default_decoder_for(code)
        if self.decoder.code is not code and not (
            self.decoder.code.generator == code.generator
        ):
            raise ValueError("decoder was built for a different code")
        self.channel = channel if channel is not None else BinaryChannel()
        # Analog stages remembered by from_link_budget so run() and
        # run_analog() model the same link; None until configured.
        self._driver: Optional[SuzukiStackDriver] = None
        self._cable: Optional[CryogenicCable] = None
        self._receiver: Optional[CmosReceiver] = None
        self._driver_deviation: float = 0.0

    @classmethod
    def from_link_budget(
        cls,
        code: LinearBlockCode,
        decoder: Optional[Decoder] = None,
        driver: Optional[SuzukiStackDriver] = None,
        cable: Optional[CryogenicCable] = None,
        receiver: Optional[CmosReceiver] = None,
        driver_deviation: float = 0.0,
    ) -> "FrameStreamPipeline":
        """Build a pipeline whose channel follows the Fig. 1 link budget.

        Parameters
        ----------
        code : LinearBlockCode
            The code framing each message.
        decoder : Decoder, optional
            Defaults to the paper's pairing for ``code``.
        driver, cable, receiver : optional
            Analog stages; defaults match :func:`link_budget_channel`.
        driver_deviation : float, optional
            PPV-induced deviation of the driver's output swing.

        Returns
        -------
        FrameStreamPipeline
        """
        channel = link_budget_channel(
            driver=driver,
            cable=cable,
            receiver=receiver,
            driver_deviation=driver_deviation,
        )
        pipeline = cls(code, decoder=decoder, channel=channel)
        pipeline._driver = driver
        pipeline._cable = cable
        pipeline._receiver = receiver
        pipeline._driver_deviation = driver_deviation
        return pipeline

    def _check_messages(self, messages: np.ndarray) -> np.ndarray:
        msgs = np.asarray(messages, dtype=np.uint8)
        if msgs.ndim != 2 or msgs.shape[1] != self.code.k:
            raise DimensionError(
                f"expected (batch, {self.code.k}) messages, got {msgs.shape}"
            )
        return msgs

    def run(
        self, messages: np.ndarray, random_state: RandomState = None
    ) -> FrameStreamResult:
        """Push a batch of messages through the whole link at once.

        Parameters
        ----------
        messages : numpy.ndarray
            ``(batch, k)`` array of 0/1 message bits.
        random_state : int, numpy.random.Generator or None, optional
            Randomness for the channel's bit flips.

        Returns
        -------
        FrameStreamResult
            Transmitted, corrupted and decoded views of the stream plus
            derived error-rate statistics.
        """
        msgs = self._check_messages(messages)
        codewords = self.code.encode_batch(msgs)
        received = self.channel.transmit(codewords, random_state=random_state)
        decoded = self.decoder.decode_batch_detailed(received)
        return FrameStreamResult(
            messages=msgs,
            codewords=codewords,
            received=received,
            decoded=decoded,
        )

    def run_analog(
        self,
        messages: np.ndarray,
        driver: Optional[SuzukiStackDriver] = None,
        cable: Optional[CryogenicCable] = None,
        receiver: Optional[CmosReceiver] = None,
        driver_deviation: Optional[float] = None,
        random_state: RandomState = None,
    ) -> FrameStreamResult:
        """Run the stream at waveform level instead of flip probabilities.

        Codeword bits become driver output levels, propagate through the
        cable, and are sliced back to bits by the receiver's vectorised
        :meth:`~repro.link.receiver.CmosReceiver.decide_batch` — the
        same physics :func:`link_budget_channel` integrates analytically,
        here sampled per bit so waveform-level effects can be added.

        Parameters
        ----------
        messages : numpy.ndarray
            ``(batch, k)`` array of 0/1 message bits.
        driver, cable, receiver : optional
            Analog stages.  Default to the stages this pipeline was
            configured with via :meth:`from_link_budget` (so ``run`` and
            ``run_analog`` model the same link), else to the
            :func:`link_budget_channel` defaults.
        driver_deviation : float, optional
            PPV-induced deviation of the driver's output swing; defaults
            to the configured deviation.
        random_state : int, numpy.random.Generator or None, optional
            Noise source for the receiver's comparator.

        Returns
        -------
        FrameStreamResult
        """
        msgs = self._check_messages(messages)
        driver = driver or self._driver or SuzukiStackDriver()
        cable = cable or self._cable or CryogenicCable()
        receiver = receiver or self._receiver or CmosReceiver()
        if driver_deviation is None:
            driver_deviation = self._driver_deviation
        codewords = self.code.encode_batch(msgs)
        low, high, extra = _received_eye(driver, cable, driver_deviation)
        levels = np.where(codewords.astype(bool), high, low)
        received = receiver.decide_batch(
            levels, low, high, extra_noise_mv_rms=extra, random_state=random_state
        )
        decoded = self.decoder.decode_batch_detailed(received)
        return FrameStreamResult(
            messages=msgs,
            codewords=codewords,
            received=received,
            decoded=decoded,
        )
