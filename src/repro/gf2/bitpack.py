"""Bit-packed GF(2) kernels for the batched hot paths.

The paper's codes are tiny (n <= 24), but the ROADMAP's target workload
is a *stream* of frames — millions of codewords pushed through encode /
corrupt / decode per second.  At that scale the natural layout is not
one ``uint8`` per bit but 64 bits per machine word, with the batch
dimension packed so that one NumPy XOR touches 64 codewords at once
("bit-slicing", the software analogue of the SFQ encoder's spatial
parallelism).

Two packing orientations are provided:

``pack_rows`` / ``unpack_rows``
    Pack each row's bits into ``uint64`` words (bits of one codeword
    share a word).  Right layout for Hamming-distance kernels: XOR two
    packed words and :func:`popcount` the result.

``pack_cols`` / ``unpack_cols``
    Pack the *batch* axis, producing one bit-slice per column (all
    codewords' bit ``j`` share words).  Right layout for mod-2 matrix
    products: output bit ``j`` of every codeword in the batch is the XOR
    of the message bit-slices selected by column ``j`` of the matrix —
    a handful of 64-way-parallel XORs per output bit, no multiply at
    all.  :class:`PackedGF2Matmul` precompiles that column structure.

Bits are packed LSB-first: bit ``t`` of word ``w`` holds logical index
``64 * w + t``.  All functions accept and return ``uint8`` 0/1 arrays at
the boundary, so callers never need to know the packed layout.

The packing, popcount, Hamming-distance and matmul kernels dispatch
through the pluggable backend layer (:mod:`repro.backends`): every
public function takes an optional ``backend=`` name, defaulting to the
ambient resolution (``use_backend`` scope, ``set_default_backend``,
``REPRO_BACKEND``, then the capability probe's pick).  All backends are
bit-identical by contract, so the choice never changes results.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.backends import resolve_backend
from repro.errors import DimensionError, NotBinaryError

#: Number of logical bits carried per packed word.
WORD_BITS = 64

_WORD_BYTES = WORD_BITS // 8


def packed_words(n_bits: int) -> int:
    """Number of ``uint64`` words needed to hold ``n_bits`` bits.

    Parameters
    ----------
    n_bits : int
        Logical bit count (non-negative).

    Returns
    -------
    int
        ``ceil(n_bits / 64)``.
    """
    if n_bits < 0:
        raise ValueError(f"bit count must be non-negative, got {n_bits}")
    return -(-n_bits // WORD_BITS)


def _as_bit_matrix(bits: np.ndarray) -> np.ndarray:
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DimensionError(f"expected a 1-D or 2-D bit array, got shape {arr.shape}")
    if arr.size and arr.max() > 1:
        raise NotBinaryError("bit array contains values other than 0 and 1")
    return arr


def pack_rows(bits: np.ndarray, backend: Optional[str] = None) -> np.ndarray:
    """Pack a ``(rows, n)`` 0/1 array along its last axis into ``uint64``.

    Parameters
    ----------
    bits : numpy.ndarray
        ``(rows, n)`` (or 1-D ``(n,)``, treated as one row) array of 0/1
        values.
    backend : str, optional
        Kernel backend name; ``None`` uses the ambient default.

    Returns
    -------
    numpy.ndarray
        ``(rows, ceil(n / 64))`` array of ``uint64`` words, LSB-first:
        bit ``t`` of word ``w`` is column ``64 * w + t``.
    """
    arr = _as_bit_matrix(bits)
    return resolve_backend(backend).pack_rows(np.ascontiguousarray(arr))


def unpack_rows(packed: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`.

    Parameters
    ----------
    packed : numpy.ndarray
        ``(rows, words)`` array of ``uint64`` words.
    n : int
        Logical bit count per row; must satisfy
        ``words == packed_words(n)``.

    Returns
    -------
    numpy.ndarray
        ``(rows, n)`` ``uint8`` array of 0/1 values.
    """
    arr = np.ascontiguousarray(packed, dtype=np.uint64)
    if arr.ndim != 2:
        raise DimensionError(f"expected a 2-D packed array, got shape {arr.shape}")
    if arr.shape[1] != packed_words(n):
        raise DimensionError(
            f"packed width {arr.shape[1]} does not match {packed_words(n)} "
            f"words for n={n}"
        )
    if n == 0:
        return np.zeros((arr.shape[0], 0), dtype=np.uint8)
    as_bytes = arr.view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :n]


def pack_cols(bits: np.ndarray, backend: Optional[str] = None) -> np.ndarray:
    """Bit-slice a ``(batch, n)`` array: pack the *batch* axis.

    Parameters
    ----------
    bits : numpy.ndarray
        ``(batch, n)`` array of 0/1 values.
    backend : str, optional
        Kernel backend name; ``None`` uses the ambient default.

    Returns
    -------
    numpy.ndarray
        ``(n, ceil(batch / 64))`` array of ``uint64`` words; row ``j``
        is the bit-slice of column ``j`` across the whole batch.
    """
    arr = _as_bit_matrix(bits)
    return resolve_backend(backend).pack_cols(np.ascontiguousarray(arr))


def unpack_cols(packed: np.ndarray, batch: int) -> np.ndarray:
    """Inverse of :func:`pack_cols`.

    Parameters
    ----------
    packed : numpy.ndarray
        ``(n, words)`` array of bit-slices.
    batch : int
        Logical batch size.

    Returns
    -------
    numpy.ndarray
        ``(batch, n)`` ``uint8`` array of 0/1 values (C-contiguous).
    """
    return np.ascontiguousarray(unpack_rows(packed, batch).T)


def popcount(
    packed: np.ndarray,
    axis: Union[int, None] = -1,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Population count of packed words, summed along ``axis``.

    Parameters
    ----------
    packed : numpy.ndarray
        Array of ``uint64`` words.
    axis : int or None, optional
        Axis to sum bit counts over (default: last).  ``None`` sums over
        the whole array.
    backend : str, optional
        Kernel backend name; ``None`` uses the ambient default.

    Returns
    -------
    numpy.ndarray or int
        Integer bit counts.
    """
    return resolve_backend(backend).popcount(
        np.asarray(packed, dtype=np.uint64), axis=axis
    )


def packed_hamming_distance(
    a: np.ndarray, b: np.ndarray, backend: Optional[str] = None
) -> np.ndarray:
    """Hamming distance between packed rows (broadcasting allowed).

    Parameters
    ----------
    a, b : numpy.ndarray
        Packed ``uint64`` arrays with broadcastable shapes whose last
        axis is the word axis.
    backend : str, optional
        Kernel backend name; ``None`` uses the ambient default.

    Returns
    -------
    numpy.ndarray
        Distances with the broadcast shape minus the word axis.
    """
    return resolve_backend(backend).hamming_distance(
        np.asarray(a, dtype=np.uint64), np.asarray(b, dtype=np.uint64)
    )


class PackedGF2Matmul:
    """Precompiled bit-sliced multiply by a fixed GF(2) matrix.

    Computes ``(X @ M) % 2`` for 0/1 arrays ``X`` of shape
    ``(batch, k)`` against a fixed ``(k, n)`` matrix ``M``, by packing
    the batch axis into ``uint64`` bit-slices and XOR-reducing, per
    output column, the input slices selected by that column's support.
    For the paper's codes this turns a batch encode into roughly
    ``n * k / 2`` XORs over ``batch / 64``-word arrays — no
    multiplications, no mod.

    Parameters
    ----------
    matrix : array_like
        ``(k, n)`` matrix over GF(2) (values reduced mod 2).
    backend : str, optional
        Kernel backend this instance dispatches to; ``None`` (the
        default) resolves the ambient backend at each call.

    Examples
    --------
    >>> import numpy as np
    >>> mul = PackedGF2Matmul([[1, 0, 1], [0, 1, 1]])
    >>> mul(np.array([[1, 1]], dtype=np.uint8)).tolist()
    [[1, 1, 0]]
    """

    def __init__(self, matrix: np.ndarray, backend: Optional[str] = None):
        m = np.asarray(matrix, dtype=np.uint8) % 2
        if m.ndim != 2:
            raise DimensionError(f"expected a 2-D matrix, got shape {m.shape}")
        self.k, self.n = m.shape
        self.matrix = m.copy()
        self.matrix.flags.writeable = False
        self.backend = backend
        #: Per-output-column row supports (indices of ones in column j).
        self._supports: List[np.ndarray] = [
            np.flatnonzero(m[:, j]) for j in range(self.n)
        ]
        # CSR form of the supports, the layout the backend kernels take.
        self._indptr = np.zeros(self.n + 1, dtype=np.int64)
        self._indptr[1:] = np.cumsum([s.size for s in self._supports])
        self._indices = (
            np.concatenate(self._supports).astype(np.int64)
            if self._indptr[-1]
            else np.zeros(0, dtype=np.int64)
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Multiply a batch of bit vectors by the compiled matrix.

        Parameters
        ----------
        x : numpy.ndarray
            ``(batch, k)`` array of 0/1 values.

        Returns
        -------
        numpy.ndarray
            ``(batch, n)`` ``uint8`` array holding ``(x @ M) % 2``.
        """
        arr = _as_bit_matrix(x)
        batch = arr.shape[0]
        if arr.shape[1] != self.k:
            raise DimensionError(
                f"expected (batch, {self.k}) inputs, got {arr.shape}"
            )
        if batch == 0:
            return np.zeros((0, self.n), dtype=np.uint8)
        slices = pack_cols(arr, backend=self.backend)  # (k, words)
        out = self.multiply_packed(slices)
        return unpack_cols(out, batch)

    def multiply_packed(self, slices: np.ndarray) -> np.ndarray:
        """Multiply already bit-sliced input, staying in the packed domain.

        Parameters
        ----------
        slices : numpy.ndarray
            ``(k, words)`` bit-slices as produced by :func:`pack_cols`.

        Returns
        -------
        numpy.ndarray
            ``(n, words)`` output bit-slices.
        """
        slices = np.asarray(slices, dtype=np.uint64)
        if slices.ndim != 2 or slices.shape[0] != self.k:
            raise DimensionError(
                f"expected ({self.k}, words) bit-slices, got {slices.shape}"
            )
        return resolve_backend(self.backend).gf2_matmul(
            np.ascontiguousarray(slices), self._indptr, self._indices
        )

    def __repr__(self) -> str:
        return f"<PackedGF2Matmul {self.k}x{self.n}>"


def packed_matmul(
    x: np.ndarray, matrix: np.ndarray, backend: Optional[str] = None
) -> np.ndarray:
    """One-shot ``(x @ matrix) % 2`` via bit-slicing.

    Convenience wrapper around :class:`PackedGF2Matmul` for callers that
    do not reuse the matrix; hot paths should compile once and reuse.

    Parameters
    ----------
    x : numpy.ndarray
        ``(batch, k)`` array of 0/1 values.
    matrix : array_like
        ``(k, n)`` GF(2) matrix.
    backend : str, optional
        Kernel backend name; ``None`` uses the ambient default.

    Returns
    -------
    numpy.ndarray
        ``(batch, n)`` ``uint8`` product.
    """
    return PackedGF2Matmul(matrix, backend=backend)(x)
