"""Dense matrices over GF(2).

:class:`GF2Matrix` wraps a NumPy ``uint8`` array and implements the
linear algebra the coding layer needs: mod-2 products, row reduction,
rank, inverse, null space, and conversion to systematic (standard) form.
Matrices are immutable by convention — operations return new objects.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import DimensionError, NotBinaryError, SingularMatrixError
from repro.gf2.vectors import as_bit_array

ArrayLike = Union[Sequence[Sequence[int]], np.ndarray, "GF2Matrix"]


class GF2Matrix:
    """An ``(rows x cols)`` matrix over GF(2).

    Parameters
    ----------
    data:
        Nested sequence, NumPy array of 0/1 entries, or another
        :class:`GF2Matrix` (copied).
    """

    __slots__ = ("_data",)

    def __init__(self, data: ArrayLike):
        if isinstance(data, GF2Matrix):
            arr = data._data.copy()
        else:
            arr = np.asarray(data, dtype=np.uint8)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2:
            raise DimensionError(f"expected a 2-D matrix, got shape {arr.shape}")
        if arr.size and arr.max() > 1:
            raise NotBinaryError("matrix contains values other than 0 and 1")
        arr = arr % 2
        arr.flags.writeable = False
        self._data = arr

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, rows: int, cols: int) -> "GF2Matrix":
        """All-zero matrix."""
        return cls(np.zeros((rows, cols), dtype=np.uint8))

    @classmethod
    def identity(cls, n: int) -> "GF2Matrix":
        """The n x n identity."""
        return cls(np.eye(n, dtype=np.uint8))

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[int]]) -> "GF2Matrix":
        """Build from an iterable of row vectors."""
        return cls(np.array([as_bit_array(r) for r in rows], dtype=np.uint8))

    @classmethod
    def from_strings(cls, rows: Iterable[str]) -> "GF2Matrix":
        """Build from strings like ``["1101", "0110"]``."""
        return cls.from_rows([as_bit_array(r) for r in rows])

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._data.shape  # type: ignore[return-value]

    @property
    def rows(self) -> int:
        return self._data.shape[0]

    @property
    def cols(self) -> int:
        return self._data.shape[1]

    def to_array(self) -> np.ndarray:
        """Return a writable copy of the underlying ``uint8`` array."""
        return self._data.copy()

    def row(self, i: int) -> np.ndarray:
        """Copy of row ``i``."""
        return self._data[i].copy()

    def column(self, j: int) -> np.ndarray:
        """Copy of column ``j``."""
        return self._data[:, j].copy()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GF2Matrix):
            return NotImplemented
        return self.shape == other.shape and bool((self._data == other._data).all())

    def __hash__(self) -> int:
        return hash((self.shape, self._data.tobytes()))

    def __repr__(self) -> str:
        body = "\n ".join("".join(str(int(b)) for b in row) for row in self._data)
        return f"GF2Matrix({self.rows}x{self.cols},\n {body})"

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __add__(self, other: "GF2Matrix") -> "GF2Matrix":
        if self.shape != other.shape:
            raise DimensionError(f"shape mismatch: {self.shape} + {other.shape}")
        return GF2Matrix(self._data ^ other._data)

    def __matmul__(self, other: Union["GF2Matrix", np.ndarray]) -> "GF2Matrix":
        rhs = other._data if isinstance(other, GF2Matrix) else np.asarray(other, dtype=np.uint8)
        if rhs.ndim == 1:
            rhs = rhs.reshape(-1, 1)
        if self.cols != rhs.shape[0]:
            raise DimensionError(
                f"inner dimension mismatch: {self.shape} @ {rhs.shape}"
            )
        product = (self._data.astype(np.uint32) @ rhs.astype(np.uint32)) % 2
        return GF2Matrix(product.astype(np.uint8))

    def multiply_vector(self, vector: Sequence[int]) -> np.ndarray:
        """Compute ``M @ v (mod 2)`` returning a 1-D array."""
        vec = as_bit_array(vector, length=self.cols)
        return ((self._data.astype(np.uint32) @ vec.astype(np.uint32)) % 2).astype(np.uint8)

    def left_multiply_vector(self, vector: Sequence[int]) -> np.ndarray:
        """Compute ``v @ M (mod 2)`` — the codeword-encoding orientation."""
        vec = as_bit_array(vector, length=self.rows)
        return ((vec.astype(np.uint32) @ self._data.astype(np.uint32)) % 2).astype(np.uint8)

    def transpose(self) -> "GF2Matrix":
        return GF2Matrix(self._data.T.copy())

    @property
    def T(self) -> "GF2Matrix":
        return self.transpose()

    # ------------------------------------------------------------------
    # Row reduction and friends
    # ------------------------------------------------------------------
    def rref(self) -> Tuple["GF2Matrix", List[int]]:
        """Reduced row-echelon form and the list of pivot columns."""
        m = self._data.copy()
        rows, cols = m.shape
        pivots: List[int] = []
        r = 0
        for c in range(cols):
            if r >= rows:
                break
            pivot_rows = np.nonzero(m[r:, c])[0]
            if pivot_rows.size == 0:
                continue
            pivot = r + int(pivot_rows[0])
            if pivot != r:
                m[[r, pivot]] = m[[pivot, r]]
            # Eliminate every other 1 in this column.
            hits = np.nonzero(m[:, c])[0]
            for h in hits:
                if h != r:
                    m[h] ^= m[r]
            pivots.append(c)
            r += 1
        return GF2Matrix(m), pivots

    def rank(self) -> int:
        """Rank over GF(2)."""
        _, pivots = self.rref()
        return len(pivots)

    def inverse(self) -> "GF2Matrix":
        """Inverse of a square, full-rank matrix.

        Raises
        ------
        SingularMatrixError
            If the matrix is not square or not invertible.
        """
        if self.rows != self.cols:
            raise SingularMatrixError(f"matrix is not square: {self.shape}")
        n = self.rows
        aug = np.concatenate([self._data.copy(), np.eye(n, dtype=np.uint8)], axis=1)
        reduced, pivots = GF2Matrix(aug).rref()
        if pivots[:n] != list(range(n)):
            raise SingularMatrixError("matrix is singular over GF(2)")
        return GF2Matrix(reduced.to_array()[:, n:])

    def null_space(self) -> "GF2Matrix":
        """Basis of the right null space ``{x : M x = 0}``, one row each.

        Returns a ``(cols - rank) x cols`` matrix (possibly 0 rows).
        """
        reduced, pivots = self.rref()
        rmat = reduced.to_array()
        free_cols = [c for c in range(self.cols) if c not in pivots]
        basis = np.zeros((len(free_cols), self.cols), dtype=np.uint8)
        for i, free in enumerate(free_cols):
            basis[i, free] = 1
            for r, pivot_col in enumerate(pivots):
                if rmat[r, free]:
                    basis[i, pivot_col] = 1
        return GF2Matrix(basis)

    def solve(self, rhs: Sequence[int]) -> np.ndarray:
        """One solution ``x`` of ``M x = rhs`` (raises if inconsistent)."""
        b = as_bit_array(rhs, length=self.rows)
        aug = np.concatenate([self._data.copy(), b.reshape(-1, 1)], axis=1)
        reduced, pivots = GF2Matrix(aug).rref()
        if self.cols in pivots:
            raise SingularMatrixError("system M x = rhs is inconsistent")
        rmat = reduced.to_array()
        x = np.zeros(self.cols, dtype=np.uint8)
        for r, c in enumerate(pivots):
            x[c] = rmat[r, -1]
        return x

    # ------------------------------------------------------------------
    # Coding-theory helpers
    # ------------------------------------------------------------------
    def to_systematic(self) -> Tuple["GF2Matrix", List[int]]:
        """Column-permute into systematic form ``[I_k | P]``.

        Returns the systematic matrix and the column permutation applied,
        as a list ``perm`` where output column ``j`` is input column
        ``perm[j]``.

        Raises
        ------
        SingularMatrixError
            If the matrix does not have full row rank.
        """
        reduced, pivots = self.rref()
        if len(pivots) != self.rows:
            raise SingularMatrixError("matrix does not have full row rank")
        other = [c for c in range(self.cols) if c not in pivots]
        perm = list(pivots) + other
        permuted = reduced.to_array()[:, perm]
        return GF2Matrix(permuted), perm

    def is_systematic(self) -> bool:
        """True if the left ``rows x rows`` block is the identity."""
        if self.cols < self.rows:
            return False
        return bool((self._data[:, : self.rows] == np.eye(self.rows, dtype=np.uint8)).all())

    def row_space_contains(self, vector: Sequence[int]) -> bool:
        """True if ``vector`` is a GF(2) combination of the rows."""
        vec = as_bit_array(vector, length=self.cols)
        stacked = GF2Matrix(np.vstack([self._data, vec]))
        return stacked.rank() == self.rank()

    def augment_columns(self, other: "GF2Matrix") -> "GF2Matrix":
        """Horizontal concatenation ``[self | other]``."""
        if self.rows != other.rows:
            raise DimensionError("row count mismatch in augment_columns")
        return GF2Matrix(np.concatenate([self._data, other._data], axis=1))

    def stack_rows(self, other: "GF2Matrix") -> "GF2Matrix":
        """Vertical concatenation."""
        if self.cols != other.cols:
            raise DimensionError("column count mismatch in stack_rows")
        return GF2Matrix(np.concatenate([self._data, other._data], axis=0))

    def delete_column(self, index: int) -> "GF2Matrix":
        """Matrix with column ``index`` removed (used to puncture codes)."""
        if not 0 <= index < self.cols:
            raise DimensionError(f"column {index} out of range for {self.shape}")
        return GF2Matrix(np.delete(self._data, index, axis=1))

    def permute_columns(self, perm: Sequence[int]) -> "GF2Matrix":
        """Apply column permutation: output col j = input col perm[j]."""
        if sorted(perm) != list(range(self.cols)):
            raise DimensionError("perm must be a permutation of all column indices")
        return GF2Matrix(self._data[:, list(perm)])
