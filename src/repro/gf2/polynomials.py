"""Polynomials over GF(2).

Used by the BCH comparison code (generator polynomials, minimal
polynomials) and handy for CRC-style checks.  Coefficients are stored
LSB-first as a ``uint8`` array: index ``i`` is the coefficient of x^i.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

import numpy as np

from repro.errors import NotBinaryError

PolyLike = Union["GF2Polynomial", Sequence[int], int, str]


class GF2Polynomial:
    """An immutable polynomial over GF(2).

    Construction accepts:

    * a coefficient sequence, LSB-first (index i = coeff of x^i),
    * an integer bit mask (bit i = coeff of x^i), e.g. ``0b1011`` is
      ``x^3 + x + 1``,
    * a string of the same form as the sequence, MSB-first, e.g.
      ``"1011"`` meaning ``x^3 + x + 1``.
    """

    __slots__ = ("_coeffs",)

    def __init__(self, coeffs: PolyLike):
        if isinstance(coeffs, GF2Polynomial):
            arr = coeffs._coeffs.copy()
        elif isinstance(coeffs, (int, np.integer)):
            if coeffs < 0:
                raise ValueError("integer polynomial mask must be non-negative")
            bits = []
            value = int(coeffs)
            while value:
                bits.append(value & 1)
                value >>= 1
            arr = np.array(bits or [0], dtype=np.uint8)
        elif isinstance(coeffs, str):
            cleaned = coeffs.replace(" ", "").replace("_", "")
            if not cleaned or any(c not in "01" for c in cleaned):
                raise NotBinaryError(f"not a binary string: {coeffs!r}")
            arr = np.array([int(c) for c in reversed(cleaned)], dtype=np.uint8)
        else:
            arr = np.asarray(coeffs, dtype=np.uint8)
            if arr.ndim != 1:
                raise NotBinaryError("coefficient array must be 1-D")
            if arr.size and arr.max() > 1:
                raise NotBinaryError("coefficients must be 0 or 1")
        arr = self._trim(arr)
        arr.flags.writeable = False
        self._coeffs = arr

    @staticmethod
    def _trim(arr: np.ndarray) -> np.ndarray:
        nz = np.nonzero(arr)[0]
        if nz.size == 0:
            return np.zeros(1, dtype=np.uint8)
        return arr[: int(nz[-1]) + 1].copy()

    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "GF2Polynomial":
        return cls([0])

    @classmethod
    def one(cls) -> "GF2Polynomial":
        return cls([1])

    @classmethod
    def x_power(cls, n: int) -> "GF2Polynomial":
        """The monomial x^n."""
        if n < 0:
            raise ValueError("exponent must be non-negative")
        coeffs = np.zeros(n + 1, dtype=np.uint8)
        coeffs[n] = 1
        return cls(coeffs)

    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """Degree; the zero polynomial reports degree -1."""
        if self.is_zero:
            return -1
        return int(self._coeffs.size - 1)

    @property
    def is_zero(self) -> bool:
        return bool((self._coeffs == 0).all())

    def coefficients(self) -> np.ndarray:
        """LSB-first coefficient copy."""
        return self._coeffs.copy()

    def to_int(self) -> int:
        """Pack into an integer mask (bit i = coeff of x^i)."""
        value = 0
        for i, c in enumerate(self._coeffs):
            if c:
                value |= 1 << i
        return value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GF2Polynomial):
            return NotImplemented
        return self._coeffs.size == other._coeffs.size and bool(
            (self._coeffs == other._coeffs).all()
        )

    def __hash__(self) -> int:
        return hash(self._coeffs.tobytes())

    def __repr__(self) -> str:
        if self.is_zero:
            return "GF2Polynomial(0)"
        terms = []
        for i in range(self.degree, -1, -1):
            if self._coeffs[i]:
                if i == 0:
                    terms.append("1")
                elif i == 1:
                    terms.append("x")
                else:
                    terms.append(f"x^{i}")
        return f"GF2Polynomial({' + '.join(terms)})"

    # ------------------------------------------------------------------
    def __add__(self, other: "GF2Polynomial") -> "GF2Polynomial":
        a, b = self._coeffs, other._coeffs
        if a.size < b.size:
            a, b = b, a
        out = a.copy()
        out[: b.size] ^= b
        return GF2Polynomial(out)

    __sub__ = __add__  # characteristic 2

    def __mul__(self, other: "GF2Polynomial") -> "GF2Polynomial":
        if self.is_zero or other.is_zero:
            return GF2Polynomial.zero()
        out = np.zeros(self._coeffs.size + other._coeffs.size - 1, dtype=np.uint8)
        for i, c in enumerate(self._coeffs):
            if c:
                out[i : i + other._coeffs.size] ^= other._coeffs
        return GF2Polynomial(out)

    def divmod(self, divisor: "GF2Polynomial") -> Tuple["GF2Polynomial", "GF2Polynomial"]:
        """Polynomial division: returns ``(quotient, remainder)``."""
        if divisor.is_zero:
            raise ZeroDivisionError("polynomial division by zero")
        rem = self._coeffs.copy()
        d = divisor._coeffs
        dd = divisor.degree
        if self.degree < dd:
            return GF2Polynomial.zero(), GF2Polynomial(rem)
        quo = np.zeros(self.degree - dd + 1, dtype=np.uint8)
        for shift in range(self.degree - dd, -1, -1):
            if rem.size > shift + dd and rem[shift + dd]:
                quo[shift] = 1
                rem[shift : shift + dd + 1] ^= d
        return GF2Polynomial(quo), GF2Polynomial(rem)

    def __mod__(self, divisor: "GF2Polynomial") -> "GF2Polynomial":
        return self.divmod(divisor)[1]

    def __floordiv__(self, divisor: "GF2Polynomial") -> "GF2Polynomial":
        return self.divmod(divisor)[0]

    def gcd(self, other: "GF2Polynomial") -> "GF2Polynomial":
        """Greatest common divisor (monic by construction over GF(2))."""
        a, b = self, other
        while not b.is_zero:
            a, b = b, a % b
        return a

    def evaluate(self, element: int, field: "object" = None) -> int:
        """Evaluate at ``element``.

        Without ``field`` the element must be 0 or 1 (evaluation in
        GF(2)); with a :class:`~repro.gf2.field.GF2mField` the element is
        a field element index and Horner's rule is used in GF(2^m).
        """
        if field is None:
            if element not in (0, 1):
                raise ValueError("evaluation point must be 0 or 1 without a field")
            if element == 0:
                return int(self._coeffs[0])
            return int(self._coeffs.sum() % 2)
        acc = 0
        for c in self._coeffs[::-1]:
            acc = field.multiply(acc, element)
            if c:
                acc = field.add(acc, 1)
        return acc

    def is_irreducible(self) -> bool:
        """Rabin irreducibility test for small degrees (exhaustive check).

        Practical for the degrees used here (<= 16): tests divisibility by
        every polynomial of degree <= deg/2.
        """
        n = self.degree
        if n <= 0:
            return False
        if n == 1:
            return True
        if self._coeffs[0] == 0:  # divisible by x
            return False
        for mask in range(2, 1 << (n // 2 + 1)):
            candidate = GF2Polynomial(mask)
            if candidate.degree < 1:
                continue
            if (self % candidate).is_zero:
                return False
        return True


def lcm(polys: Iterable[GF2Polynomial]) -> GF2Polynomial:
    """Least common multiple of an iterable of polynomials."""
    result = GF2Polynomial.one()
    for p in polys:
        if p.is_zero:
            raise ZeroDivisionError("lcm with zero polynomial")
        result = (result * p) // result.gcd(p)
    return result
