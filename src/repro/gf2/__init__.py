"""Linear algebra and polynomial arithmetic over GF(2).

This subpackage is the mathematical substrate for the coding-theory
layer: dense binary matrices (:class:`~repro.gf2.matrix.GF2Matrix`),
bit-vector helpers, polynomials over GF(2) and the extension fields
GF(2^m) needed by the BCH comparison code.
"""

from repro.gf2.bitpack import (
    PackedGF2Matmul,
    pack_cols,
    pack_rows,
    packed_hamming_distance,
    packed_matmul,
    popcount,
    unpack_cols,
    unpack_rows,
)
from repro.gf2.matrix import GF2Matrix
from repro.gf2.vectors import (
    bits_from_int,
    bits_to_int,
    hamming_distance,
    hamming_weight,
    parse_bits,
    format_bits,
    all_binary_vectors,
    all_weight_w_vectors,
)
from repro.gf2.polynomials import GF2Polynomial
from repro.gf2.field import GF2mField

__all__ = [
    "GF2Matrix",
    "GF2Polynomial",
    "GF2mField",
    "PackedGF2Matmul",
    "pack_cols",
    "pack_rows",
    "packed_hamming_distance",
    "packed_matmul",
    "popcount",
    "unpack_cols",
    "unpack_rows",
    "bits_from_int",
    "bits_to_int",
    "hamming_distance",
    "hamming_weight",
    "parse_bits",
    "format_bits",
    "all_binary_vectors",
    "all_weight_w_vectors",
]
