"""Extension fields GF(2^m) with log/antilog tables.

The BCH comparison code needs GF(2^m) arithmetic to locate the roots of
its generator polynomial.  Elements are represented as integers in
``[0, 2^m)`` whose bit i is the coefficient of alpha^i in the polynomial
basis.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gf2.polynomials import GF2Polynomial

#: Default primitive polynomials (integer masks, bit i = coeff of x^i)
#: for the field sizes used in this project.
PRIMITIVE_POLYNOMIALS: Dict[int, int] = {
    2: 0b111,         # x^2 + x + 1
    3: 0b1011,        # x^3 + x + 1
    4: 0b10011,       # x^4 + x + 1
    5: 0b100101,      # x^5 + x^2 + 1
    6: 0b1000011,     # x^6 + x + 1
    7: 0b10001001,    # x^7 + x^3 + 1
    8: 0b100011101,   # x^8 + x^4 + x^3 + x^2 + 1
}


class GF2mField:
    """The finite field GF(2^m) built from a primitive polynomial.

    Parameters
    ----------
    m:
        Extension degree (2..8 supported with the default table).
    primitive_polynomial:
        Optional integer mask overriding the default primitive polynomial.
    """

    def __init__(self, m: int, primitive_polynomial: int | None = None):
        if m < 2:
            raise ValueError("extension degree m must be >= 2")
        if primitive_polynomial is None:
            if m not in PRIMITIVE_POLYNOMIALS:
                raise ValueError(
                    f"no default primitive polynomial for m={m}; pass one explicitly"
                )
            primitive_polynomial = PRIMITIVE_POLYNOMIALS[m]
        poly = GF2Polynomial(primitive_polynomial)
        if poly.degree != m:
            raise ValueError(
                f"primitive polynomial degree {poly.degree} does not match m={m}"
            )
        if not poly.is_irreducible():
            raise ValueError("primitive polynomial is reducible")
        self.m = m
        self.size = 1 << m
        self.order = self.size - 1  # multiplicative group order
        self.primitive_polynomial = poly
        self._exp: List[int] = [0] * (2 * self.order)
        self._log: List[int] = [0] * self.size
        self._build_tables(primitive_polynomial)

    def _build_tables(self, prim_mask: int) -> None:
        x = 1
        for i in range(self.order):
            if i > 0 and x == 1:
                # x cycled back early: its multiplicative order divides i,
                # so x does not generate the full group.
                raise ValueError("polynomial is irreducible but not primitive")
            self._exp[i] = x
            self._log[x] = i
            x <<= 1
            if x & self.size:
                x ^= prim_mask
        if x != 1:
            raise ValueError("polynomial is irreducible but not primitive")
        # Duplicate for overflow-free exponent addition.
        for i in range(self.order, 2 * self.order):
            self._exp[i] = self._exp[i - self.order]

    # ------------------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        """Field addition (XOR)."""
        self._check(a)
        self._check(b)
        return a ^ b

    def multiply(self, a: int, b: int) -> int:
        """Field multiplication via log tables."""
        self._check(a)
        self._check(b)
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def inverse(self, a: int) -> int:
        """Multiplicative inverse."""
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse")
        return self._exp[self.order - self._log[a]]

    def divide(self, a: int, b: int) -> int:
        """Field division ``a / b``."""
        return self.multiply(a, self.inverse(b))

    def power(self, a: int, n: int) -> int:
        """``a**n`` with n possibly negative."""
        self._check(a)
        if a == 0:
            if n <= 0:
                raise ZeroDivisionError("0 cannot be raised to a non-positive power")
            return 0
        exponent = (self._log[a] * n) % self.order
        return self._exp[exponent]

    def alpha_power(self, n: int) -> int:
        """The element alpha^n (alpha = the primitive element)."""
        return self._exp[n % self.order]

    def log_alpha(self, a: int) -> int:
        """Discrete log base alpha."""
        self._check(a)
        if a == 0:
            raise ValueError("log of 0 is undefined")
        return self._log[a]

    def _check(self, a: int) -> None:
        if not 0 <= a < self.size:
            raise ValueError(f"element {a} outside GF(2^{self.m})")

    # ------------------------------------------------------------------
    def minimal_polynomial(self, element: int) -> GF2Polynomial:
        """Minimal polynomial of ``element`` over GF(2).

        Computed as the product of ``(x - c)`` over the conjugacy class
        ``{element, element^2, element^4, ...}``.
        """
        self._check(element)
        if element == 0:
            return GF2Polynomial([0, 1])  # x
        conjugates = []
        c = element
        while c not in conjugates:
            conjugates.append(c)
            c = self.multiply(c, c)
        # Expand prod (x + c_i) with coefficients in GF(2^m); the result
        # must collapse to GF(2) coefficients.
        coeffs = [1]  # polynomial "1" in GF(2^m) coefficients, LSB-first
        for conj in conjugates:
            new = [0] * (len(coeffs) + 1)
            for i, a in enumerate(coeffs):
                new[i + 1] ^= a              # x * a x^i
                new[i] ^= self.multiply(a, conj)  # conj * a x^i
            coeffs = new
        if any(c not in (0, 1) for c in coeffs):
            raise ArithmeticError("minimal polynomial has non-binary coefficients")
        return GF2Polynomial(coeffs)

    def __repr__(self) -> str:
        return (
            f"GF2mField(m={self.m}, "
            f"primitive_polynomial={self.primitive_polynomial!r})"
        )
