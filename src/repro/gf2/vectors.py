"""Binary vector helpers used throughout the coding layer.

Vectors are NumPy ``uint8`` arrays holding 0/1 values.  The helpers here
convert between integers, strings like ``"1011"``, and arrays, and
enumerate message/error spaces for the exhaustive analyses behind
Table I of the paper.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Sequence, Union

import numpy as np

from repro.errors import NotBinaryError

BitsLike = Union[str, int, Sequence[int], np.ndarray]


def as_bit_array(bits: BitsLike, length: int | None = None) -> np.ndarray:
    """Coerce ``bits`` to a 1-D ``uint8`` array of 0/1 values.

    Accepts a string of '0'/'1' characters (optionally with spaces or
    underscores), a sequence of ints, or an existing array.  Integers are
    *not* accepted here because the bit-width would be ambiguous; use
    :func:`bits_from_int`.
    """
    if isinstance(bits, str):
        cleaned = bits.replace(" ", "").replace("_", "")
        if not cleaned or any(c not in "01" for c in cleaned):
            raise NotBinaryError(f"not a binary string: {bits!r}")
        arr = np.frombuffer(cleaned.encode("ascii"), dtype=np.uint8) - ord("0")
        arr = arr.astype(np.uint8)
    elif isinstance(bits, (int, np.integer)):
        raise TypeError("integer bit patterns need an explicit width; use bits_from_int")
    else:
        arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 1:
        raise NotBinaryError(f"expected a 1-D bit vector, got shape {arr.shape}")
    if arr.size and arr.max() > 1:
        raise NotBinaryError("bit vector contains values other than 0 and 1")
    if length is not None and arr.size != length:
        raise NotBinaryError(f"expected {length} bits, got {arr.size}")
    return arr


def parse_bits(text: str, length: int | None = None) -> np.ndarray:
    """Parse a string such as ``"1011"`` into a bit array."""
    return as_bit_array(text, length=length)


def format_bits(bits: BitsLike) -> str:
    """Render a bit vector as a compact string such as ``"01100110"``."""
    arr = as_bit_array(bits)
    return "".join("1" if b else "0" for b in arr)


def bits_from_int(value: int, width: int, msb_first: bool = True) -> np.ndarray:
    """Expand integer ``value`` into ``width`` bits.

    ``msb_first=True`` matches the paper's message convention where
    ``'1011'`` means ``m1=1, m2=0, m3=1, m4=1``.
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    bits = np.array([(value >> i) & 1 for i in range(width)], dtype=np.uint8)
    return bits[::-1].copy() if msb_first else bits


def bits_to_int(bits: BitsLike, msb_first: bool = True) -> int:
    """Pack a bit vector back into an integer (inverse of bits_from_int)."""
    arr = as_bit_array(bits)
    seq = arr if msb_first else arr[::-1]
    value = 0
    for b in seq:
        value = (value << 1) | int(b)
    return value


def hamming_weight(bits: BitsLike) -> int:
    """Number of ones in the vector."""
    return int(as_bit_array(bits).sum())


def hamming_distance(a: BitsLike, b: BitsLike) -> int:
    """Number of positions where ``a`` and ``b`` differ."""
    va = as_bit_array(a)
    vb = as_bit_array(b)
    if va.size != vb.size:
        raise NotBinaryError(
            f"length mismatch: {va.size} vs {vb.size} — vectors must be equal length"
        )
    return int(np.count_nonzero(va != vb))


def all_binary_vectors(length: int) -> np.ndarray:
    """All ``2**length`` binary vectors as a ``(2**length, length)`` array.

    Row ``i`` is the MSB-first expansion of ``i``, so row ordering matches
    :func:`bits_from_int`.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if length > 24:
        raise ValueError(f"refusing to enumerate 2**{length} vectors")
    count = 1 << length
    indices = np.arange(count, dtype=np.uint32)
    shifts = np.arange(length - 1, -1, -1, dtype=np.uint32)
    return ((indices[:, None] >> shifts[None, :]) & 1).astype(np.uint8)


def all_weight_w_vectors(length: int, weight: int) -> Iterator[np.ndarray]:
    """Yield every length-``length`` vector of Hamming weight ``weight``."""
    if not 0 <= weight <= length:
        raise ValueError(f"weight must lie in [0, {length}], got {weight}")
    for support in combinations(range(length), weight):
        vec = np.zeros(length, dtype=np.uint8)
        for idx in support:
            vec[idx] = 1
        yield vec


def count_weight_w_vectors(length: int, weight: int) -> int:
    """Binomial coefficient C(length, weight) as an int."""
    from math import comb

    return comb(length, weight)


def xor_reduce(vectors: Iterable[BitsLike], length: int) -> np.ndarray:
    """XOR-accumulate an iterable of equal-length bit vectors."""
    acc = np.zeros(length, dtype=np.uint8)
    for vec in vectors:
        acc ^= as_bit_array(vec, length=length)
    return acc
