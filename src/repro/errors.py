"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-hierarchies mirror the package
layout: coding-theory errors, netlist/synthesis errors, simulation errors
and experiment/configuration errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class CodingError(ReproError):
    """Base class for coding-theory errors."""


class DimensionError(CodingError):
    """A vector or matrix does not have the expected shape."""


class NotBinaryError(CodingError):
    """An array contains values other than 0 and 1."""


class DecodingFailure(CodingError):
    """A decoder detected an uncorrectable error pattern.

    Decoders in this library normally *return* a result object with a
    ``detected_uncorrectable`` flag instead of raising; this exception is
    reserved for strict-mode decoding APIs.
    """


class SingularMatrixError(CodingError):
    """A GF(2) matrix inversion was requested for a singular matrix."""


class NetlistError(ReproError):
    """Base class for netlist construction and validation errors."""


class FanOutViolation(NetlistError):
    """An SFQ cell output drives more than one sink without a splitter."""


class UnknownCellError(NetlistError):
    """A cell type name is not present in the cell library."""


class SynthesisError(NetlistError):
    """Logic synthesis could not map the requested function."""


class SimulationError(ReproError):
    """Base class for simulator errors."""


class TimingViolation(SimulationError):
    """A pulse arrived inside a gate's setup/hold window."""


class ServiceError(ReproError):
    """Base class for streaming-codec-service errors."""


class SessionError(ServiceError):
    """A codec session id or configuration is unknown or invalid."""


class BackpressureError(ServiceError):
    """A bounded scheduler queue rejected work (non-blocking admission)."""


class BackendError(ReproError):
    """Base class for kernel-backend registry and dispatch errors."""


class UnknownBackendError(BackendError):
    """A backend name is not present in the backend registry."""


class BackendUnavailableError(BackendError):
    """A registered backend cannot be used in this environment.

    The message carries the probe's reason string (missing package,
    no C compiler, failed bit-identity self-check, ...).
    """


class ExperimentError(ReproError):
    """Base class for experiment-harness errors."""


class CalibrationError(ExperimentError):
    """Sensitivity calibration failed to converge or is inconsistent."""
