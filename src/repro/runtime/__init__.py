"""The Monte-Carlo runtime layer: sharded, cached, parallel experiments.

Every paper experiment that samples a chip population — Fig. 5, the
spread sweep, the decoder-policy sweep, the full report — runs on
:class:`MonteCarloEngine`:

* an :class:`ExperimentSpec` pins a population down completely (link,
  chip/message counts, spread, margin model, seed plan);
* a :class:`ShardPlan` partitions it into deterministic chip ranges
  whose random substreams are independent of execution order;
* the engine executes shards inline (``jobs=1``) or across a process
  pool (``jobs=N``) — bit-identically — and streams per-shard counts
  into one accumulator per spec;
* a :class:`ResultCache` makes finished runs free to repeat and
  interrupted runs resumable at shard granularity.
"""

from repro.runtime.cache import ResultCache, default_cache_root
from repro.runtime.engine import EngineResult, MonteCarloEngine
from repro.runtime.progress import ProgressEvent, ThroughputReporter
from repro.runtime.spec import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_SHARD_SIZE,
    ExperimentSpec,
    Shard,
    ShardPlan,
)
from repro.runtime.spec import spec_config_hash
from repro.runtime.worker import register_shard_runner, run_shard, shard_runner_for

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_SHARD_SIZE",
    "EngineResult",
    "ExperimentSpec",
    "MonteCarloEngine",
    "ProgressEvent",
    "ResultCache",
    "Shard",
    "ShardPlan",
    "ThroughputReporter",
    "default_cache_root",
    "register_shard_runner",
    "run_shard",
    "shard_runner_for",
    "spec_config_hash",
]
