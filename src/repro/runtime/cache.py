"""Content-addressed on-disk result cache with shard checkpoints.

Layout (under ``~/.cache/repro`` / ``$REPRO_CACHE_DIR`` / ``--cache-dir``)::

    <root>/v1/<hh>/<config-hash>/
        meta.json             # the spec's canonical dict + bookkeeping
        result.npz            # merged per-chip counts (key "counts")
        shards/<start>-<stop>.npy   # checkpoints of an unfinished run

``config-hash`` is :meth:`ExperimentSpec.config_hash` — SHA-256 over the
canonical spec dict, the cache schema version and the code version — so
any change to the experiment's inputs (seed, spread, margins, decoder
policy, chip/message counts) addresses a different entry.  ``meta.json``
stores the full spec dict and is compared field-by-field on load, so
even a hash collision (or a corrupt entry) degrades to a cache miss,
never to wrong counts.

Shard checkpoints are written as each shard completes and deleted once
the merged result lands, which is what makes interrupted runs resumable:
a rerun loads whatever ranges already exist and only executes the rest.
All writes go through a temp file + ``os.replace`` so a crash mid-write
leaves no half-written entry behind.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path
from zipfile import BadZipFile
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro._version import __version__
from repro.obs.metrics import default_registry
from repro.runtime.spec import CACHE_SCHEMA_VERSION, ExperimentSpec, Shard

_SHARD_FILE = re.compile(r"^(\d+)-(\d+)\.npy$")


def _cache_events():
    """The cache's event counter on the current process-default registry."""
    return default_registry().counter(
        "repro_cache_events_total",
        "Result-cache operations: result_{hit,miss,store}, shard_{store,resumed}.",
        ("event",),
    )


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _atomic_write(path: Path, write_fn) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".tmp")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            write_fn(handle)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


class ResultCache:
    """Config-hash-keyed store of Monte-Carlo counts + shard checkpoints."""

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self._store = self.root / f"v{CACHE_SCHEMA_VERSION}"

    def entry_dir(self, spec: ExperimentSpec) -> Path:
        key = spec.config_hash()
        return self._store / key[:2] / key

    # ------------------------------------------------------------------
    # Merged results
    # ------------------------------------------------------------------
    def load_result(self, spec: ExperimentSpec) -> Optional[np.ndarray]:
        """The cached ``(n_chips,)`` counts, or ``None`` on any mismatch."""
        events = _cache_events()
        entry = self.entry_dir(spec)
        result_path = entry / "result.npz"
        if not result_path.exists() or not self._meta_matches(entry, spec):
            events.labels(event="result_miss").inc()
            return None
        try:
            with np.load(result_path) as payload:
                counts = np.asarray(payload["counts"], dtype=np.int64)
        except (OSError, ValueError, KeyError, BadZipFile):
            events.labels(event="result_miss").inc()
            return None
        if counts.shape != (spec.n_chips,):
            events.labels(event="result_miss").inc()
            return None
        events.labels(event="result_hit").inc()
        return counts

    def store_result(self, spec: ExperimentSpec, counts: np.ndarray) -> Path:
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (spec.n_chips,):
            raise ValueError(
                f"counts shape {counts.shape} does not match {spec.n_chips} chips"
            )
        entry = self.entry_dir(spec)
        self._write_meta(entry, spec)
        _atomic_write(entry / "result.npz", lambda fh: np.savez(fh, counts=counts))
        self.clear_shards(spec)
        _cache_events().labels(event="result_store").inc()
        return entry

    # ------------------------------------------------------------------
    # Shard checkpoints
    # ------------------------------------------------------------------
    def store_shard(self, spec: ExperimentSpec, shard: Shard, counts: np.ndarray) -> None:
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (shard.n_chips,):
            raise ValueError(
                f"shard counts shape {counts.shape} does not match "
                f"[{shard.start}, {shard.stop})"
            )
        entry = self.entry_dir(spec)
        self._write_meta(entry, spec)
        path = entry / "shards" / f"{shard.start}-{shard.stop}.npy"
        _atomic_write(path, lambda fh: np.save(fh, counts))
        _cache_events().labels(event="shard_store").inc()

    def load_shards(self, spec: ExperimentSpec) -> Dict[Tuple[int, int], np.ndarray]:
        """All checkpointed ranges of ``spec``, keyed ``(start, stop)``."""
        entry = self.entry_dir(spec)
        shards_dir = entry / "shards"
        if not shards_dir.is_dir() or not self._meta_matches(entry, spec):
            return {}
        checkpoints: Dict[Tuple[int, int], np.ndarray] = {}
        for path in shards_dir.iterdir():
            match = _SHARD_FILE.match(path.name)
            if not match:
                continue
            start, stop = int(match.group(1)), int(match.group(2))
            if not 0 <= start <= stop <= spec.n_chips:
                continue
            try:
                counts = np.asarray(np.load(path), dtype=np.int64)
            except (OSError, ValueError):
                continue
            if counts.shape == (stop - start,):
                checkpoints[(start, stop)] = counts
        if checkpoints:
            _cache_events().labels(event="shard_resumed").inc(len(checkpoints))
        return checkpoints

    def clear_shards(self, spec: ExperimentSpec) -> None:
        shards_dir = self.entry_dir(spec) / "shards"
        if not shards_dir.is_dir():
            return
        for path in shards_dir.iterdir():
            if _SHARD_FILE.match(path.name):
                path.unlink(missing_ok=True)
        try:
            shards_dir.rmdir()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def _write_meta(self, entry: Path, spec: ExperimentSpec) -> None:
        meta_path = entry / "meta.json"
        if meta_path.exists():
            return
        payload = {
            "spec": spec.to_dict(),
            "cache_schema": CACHE_SCHEMA_VERSION,
            "code_version": __version__,
        }
        data = json.dumps(payload, sort_keys=True, indent=1).encode("utf-8")
        _atomic_write(meta_path, lambda fh: fh.write(data))

    def _meta_matches(self, entry: Path, spec: ExperimentSpec) -> bool:
        meta_path = entry / "meta.json"
        try:
            payload = json.loads(meta_path.read_text())
        except (OSError, ValueError):
            return False
        return payload.get("spec") == spec.to_dict()
