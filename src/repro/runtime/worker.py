"""The shard worker: the one per-chip loop in the codebase.

:func:`run_shard` executes a contiguous chip range of one
:class:`~repro.runtime.spec.ExperimentSpec` and returns the per-chip
erroneous-message counts.  It is a module-level function with picklable
arguments so a ``ProcessPoolExecutor`` can dispatch it; the inline
(``jobs=1``) engine path calls exactly the same function, which is what
makes serial and parallel runs bit-identical by construction.

Link construction (design synthesis + decoder build) is memoised per
process keyed on ``(scheme, decoder_strategy, bounded_syndrome_weight)``,
so a long-lived worker synthesises each netlist once however many shards
it executes.

Imports of the system layer happen inside the functions: ``repro.system``
itself imports the engine (the Fig. 5 experiment runs on it), and the
lazy imports keep ``repro.runtime`` importable from either direction.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.runtime.spec import ExperimentSpec, Shard


@lru_cache(maxsize=None)
def _link_for(
    scheme: str,
    decoder_strategy: Optional[str],
    bounded_syndrome_weight: Optional[int],
):
    from repro.coding.decoders import SyndromeDecoder
    from repro.encoders.designs import design_for_scheme
    from repro.system.datalink import CryogenicDataLink

    design = design_for_scheme(scheme)
    if bounded_syndrome_weight is not None:
        if design.code is None:
            raise ValueError(f"scheme {scheme!r} has no code to bound-decode")
        link = CryogenicDataLink(design)
        link.decoder = SyndromeDecoder(
            design.code, max_correctable_weight=bounded_syndrome_weight
        )
        return link
    return CryogenicDataLink(
        design,
        decoder_strategy=None if design.code is None else decoder_strategy,
    )


def run_shard(spec: ExperimentSpec, shard: Shard) -> np.ndarray:
    """Simulate chips ``[shard.start, shard.stop)`` of ``spec``.

    Returns the ``(shard.n_chips,)`` int64 array of per-chip erroneous
    message counts (the paper's per-chip statistic N).
    """
    from repro.ppv.montecarlo import ChipSampler

    if shard.stop > spec.n_chips:
        raise ValueError(
            f"shard [{shard.start}, {shard.stop}) exceeds population of "
            f"{spec.n_chips} chips"
        )
    link = _link_for(spec.scheme, spec.decoder_strategy, spec.bounded_syndrome_weight)
    sampler = ChipSampler(link.design.netlist, spec.spread, spec.margin_model)
    counts = np.empty(shard.n_chips, dtype=np.int64)
    k = link.message_bits
    for chip in sampler.sample_range(shard.start, shard.stop, spec.seed_plan):
        messages = chip.rng.integers(0, 2, size=(spec.n_messages, k)).astype(np.uint8)
        result = link.transmit(messages, chip.faults, chip.rng)
        counts[chip.index - shard.start] = result.n_erroneous
    return counts
