"""The shard workers: the per-chip loops in the codebase.

:func:`run_shard` executes a contiguous chip range of one spec and
returns the per-chip counts.  It is a module-level function with
picklable arguments so a ``ProcessPoolExecutor`` can dispatch it; the
inline (``jobs=1``) engine path calls exactly the same function, which
is what makes serial and parallel runs bit-identical by construction.

The engine is workload-agnostic: it only needs a spec with ``n_chips``,
``display_label``, ``to_dict()``/``config_hash()`` and a ``kind``
string.  :func:`run_shard` dispatches on ``spec.kind`` through the
:func:`register_shard_runner` registry, so new experiment kinds (e.g.
the hard-vs-soft coding-gain sweep in
:mod:`repro.experiments.soft_gain`) plug their own per-chip loop into
the same sharding, caching and multiprocessing machinery.  A worker
process resolves the runner after unpickling the spec, and unpickling
imports the module that defines the spec class — which is also where
its runner must be registered.

Link construction (design synthesis + decoder build) is memoised per
process keyed on ``(scheme, decoder_strategy, bounded_syndrome_weight)``,
so a long-lived worker synthesises each netlist once however many shards
it executes.

Imports of the system layer happen inside the functions: ``repro.system``
itself imports the engine (the Fig. 5 experiment runs on it), and the
lazy imports keep ``repro.runtime`` importable from either direction.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, Optional

import numpy as np

from repro.runtime.spec import ExperimentSpec, Shard

#: A shard runner: ``(spec, shard) -> (shard.n_chips,) int64 counts``.
ShardRunner = Callable[[object, Shard], np.ndarray]

_SHARD_RUNNERS: Dict[str, ShardRunner] = {}


def register_shard_runner(kind: str, runner: ShardRunner) -> None:
    """Register the per-chip loop executed for specs of ``kind``.

    Registering a kind twice replaces the runner (idempotent module
    re-imports are the common case).
    """
    _SHARD_RUNNERS[kind] = runner


def shard_runner_for(spec) -> ShardRunner:
    """Resolve the runner for ``spec`` via its ``kind`` attribute.

    A spec without a ``kind`` fails here (loudly, at the dispatch
    point) rather than being guessed onto some default runner.
    """
    try:
        return _SHARD_RUNNERS[spec.kind]
    except KeyError:
        raise KeyError(
            f"no shard runner registered for spec kind {spec.kind!r}; "
            f"known kinds: {sorted(_SHARD_RUNNERS)}"
        )


def run_shard(spec, shard: Shard) -> np.ndarray:
    """Simulate chips ``[shard.start, shard.stop)`` of ``spec``.

    Returns the ``(shard.n_chips,)`` int64 array of per-chip counts
    (erroneous messages for link-transmission specs, erroneous message
    bits for soft-gain specs — each kind documents its own statistic).
    """
    if shard.stop > spec.n_chips:
        raise ValueError(
            f"shard [{shard.start}, {shard.stop}) exceeds population of "
            f"{spec.n_chips} chips"
        )
    from repro.backends import use_backend

    # Scope the spec's kernel backend over the whole per-chip loop so
    # every decode the runner performs — however deep — honours it.
    with use_backend(getattr(spec, "backend", None)):
        return shard_runner_for(spec)(spec, shard)


# ---------------------------------------------------------------------
# The paper's link-transmission workload (Fig. 5 and the ablations)
# ---------------------------------------------------------------------
@lru_cache(maxsize=None)
def _link_for(
    scheme: str,
    decoder_strategy: Optional[str],
    bounded_syndrome_weight: Optional[int],
):
    from repro.coding.decoders import SyndromeDecoder
    from repro.encoders.designs import design_for_scheme
    from repro.system.datalink import CryogenicDataLink

    design = design_for_scheme(scheme)
    if bounded_syndrome_weight is not None:
        if design.code is None:
            raise ValueError(f"scheme {scheme!r} has no code to bound-decode")
        link = CryogenicDataLink(design)
        link.decoder = SyndromeDecoder(
            design.code, max_correctable_weight=bounded_syndrome_weight
        )
        return link
    return CryogenicDataLink(
        design,
        decoder_strategy=None if design.code is None else decoder_strategy,
    )


def _run_link_transmission_shard(spec: ExperimentSpec, shard: Shard) -> np.ndarray:
    """Per-chip erroneous-message counts (the paper's statistic N)."""
    from repro.ppv.montecarlo import ChipSampler

    link = _link_for(spec.scheme, spec.decoder_strategy, spec.bounded_syndrome_weight)
    sampler = ChipSampler(link.design.netlist, spec.spread, spec.margin_model)
    counts = np.empty(shard.n_chips, dtype=np.int64)
    k = link.message_bits
    for chip in sampler.sample_range(shard.start, shard.stop, spec.seed_plan):
        messages = chip.rng.integers(0, 2, size=(spec.n_messages, k)).astype(np.uint8)
        result = link.transmit(messages, chip.faults, chip.rng)
        counts[chip.index - shard.start] = result.n_erroneous
    return counts


register_shard_runner(ExperimentSpec.kind, _run_link_transmission_shard)
