"""The Monte-Carlo experiment engine.

:class:`MonteCarloEngine` executes :class:`~repro.runtime.spec.ExperimentSpec`
populations shard by shard:

* ``jobs=1`` runs every shard inline, in plan order;
* ``jobs=N`` dispatches shards to a ``ProcessPoolExecutor`` and merges
  them as they complete.

Both paths call the same :func:`~repro.runtime.worker.run_shard`
function, and every chip's random substreams are pinned by the spec's
seed plan rather than by execution order — so serial, parallel, and
out-of-order execution produce bit-identical counts.

With a :class:`~repro.runtime.cache.ResultCache` attached, finished
populations are served from disk without executing any shard, completed
shards of unfinished populations are checkpointed as they land, and a
rerun after an interruption resumes from the checkpoints instead of
restarting.

The merge is streaming: per spec the engine holds one ``(n_chips,)``
int64 counts array that shards scatter into — chip objects (fault maps,
generators) never leave the worker.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.obs.metrics import WIDE_TIME_BUCKETS_US, default_registry
from repro.runtime import worker
from repro.runtime.cache import ResultCache
from repro.runtime.progress import ProgressEvent
from repro.runtime.spec import DEFAULT_SHARD_SIZE, ExperimentSpec, Shard, ShardPlan

ProgressCallback = Callable[[ProgressEvent], None]


def _engine_metrics():
    """The engine's families on the *current* process-default registry.

    Fetched per ``run_many`` call (not cached at import) so
    :func:`repro.obs.metrics.reset_default_registry` isolates tests.
    """
    registry = default_registry()
    return (
        registry.counter(
            "repro_engine_shards_total",
            "Shards accounted for by the engine, by outcome.",
            ("outcome", "kind"),
        ),
        registry.counter(
            "repro_engine_chips_total",
            "Chips accounted for by the engine, by outcome.",
            ("outcome", "kind"),
        ),
        registry.histogram(
            "repro_engine_shard_time_us",
            "Wall time of one executed shard, microseconds.",
            ("kind",),
            WIDE_TIME_BUCKETS_US,
        ),
        registry.gauge(
            "repro_engine_chips_per_second",
            "Executed-chip throughput of the most recent engine run.",
        ).labels(),
    )


def _timed_run_shard(spec: ExperimentSpec, shard: Shard):
    """Run one shard and report its wall time (pool submission target).

    The duration is measured inside the worker process so pool-queue
    wait never inflates the shard-time histogram.
    """
    started = time.perf_counter()
    counts = worker.run_shard(spec, shard)
    return counts, (time.perf_counter() - started) * 1e6


@dataclass
class EngineResult:
    """One spec's merged outcome plus how it was obtained."""

    spec: ExperimentSpec
    counts: np.ndarray          # (n_chips,) int64 erroneous messages per chip
    from_cache: bool            # served whole from the result cache
    shards_executed: int        # shards simulated by this run
    shards_resumed: int         # shards restored from checkpoints

    @property
    def probability_zero_errors(self) -> float:
        return float((self.counts == 0).mean()) if self.counts.size else 1.0


@dataclass
class _SpecState:
    """Streaming accumulator for one in-flight spec."""

    index: int
    spec: ExperimentSpec
    plan: ShardPlan
    counts: np.ndarray
    remaining: Set[Shard] = field(default_factory=set)
    shards_executed: int = 0
    shards_resumed: int = 0

    @property
    def complete(self) -> bool:
        return not self.remaining


class MonteCarloEngine:
    """Sharded, cached, optionally multiprocess Monte-Carlo executor."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        shard_size: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.shard_size = shard_size if shard_size is not None else DEFAULT_SHARD_SIZE
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be positive, got {self.shard_size}")
        self.progress = progress

    def run(self, spec: ExperimentSpec) -> EngineResult:
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence[ExperimentSpec]) -> List[EngineResult]:
        """Execute several populations, sharing one worker pool."""
        specs = list(specs)
        started = time.perf_counter()
        results: List[Optional[EngineResult]] = [None] * len(specs)
        states: Dict[int, _SpecState] = {}
        chips_total = sum(spec.n_chips for spec in specs)
        chips_done = 0
        chips_executed = 0
        shards_metric, chips_metric, shard_time, chips_rate = _engine_metrics()

        for index, spec in enumerate(specs):
            if self.cache is not None:
                cached = self.cache.load_result(spec)
                if cached is not None:
                    results[index] = EngineResult(
                        spec=spec,
                        counts=cached,
                        from_cache=True,
                        shards_executed=0,
                        shards_resumed=0,
                    )
                    chips_done += spec.n_chips
                    chips_metric.labels(outcome="cached", kind=spec.kind).inc(
                        spec.n_chips
                    )
                    continue
            plan = ShardPlan.split(spec.n_chips, self.shard_size)
            state = _SpecState(
                index=index,
                spec=spec,
                plan=plan,
                counts=np.zeros(spec.n_chips, dtype=np.int64),
                remaining=set(plan.shards),
            )
            if self.cache is not None and plan.shards:
                checkpoints = self.cache.load_shards(spec)
                for shard in plan.shards:
                    counts = checkpoints.get((shard.start, shard.stop))
                    if counts is None:
                        continue
                    state.counts[shard.start : shard.stop] = counts
                    state.remaining.discard(shard)
                    state.shards_resumed += 1
                    chips_done += shard.n_chips
                    shards_metric.labels(outcome="resumed", kind=spec.kind).inc()
                    chips_metric.labels(outcome="resumed", kind=spec.kind).inc(
                        shard.n_chips
                    )
            states[index] = state
            if state.complete:
                results[index] = self._finalize(state)

        tasks = [
            (state.index, shard)
            for state in states.values()
            if not state.complete
            for shard in state.plan.shards
            if shard in state.remaining
        ]

        def absorb(
            index: int,
            shard: Shard,
            counts: np.ndarray,
            dur_us: Optional[float] = None,
        ) -> None:
            nonlocal chips_done, chips_executed
            state = states[index]
            state.counts[shard.start : shard.stop] = counts
            state.remaining.discard(shard)
            state.shards_executed += 1
            chips_done += shard.n_chips
            chips_executed += shard.n_chips
            kind = state.spec.kind
            shards_metric.labels(outcome="executed", kind=kind).inc()
            chips_metric.labels(outcome="executed", kind=kind).inc(shard.n_chips)
            if dur_us is not None:
                shard_time.labels(kind=kind).observe(dur_us)
            if self.cache is not None and not state.complete:
                self.cache.store_shard(state.spec, shard, counts)
            if state.complete:
                results[index] = self._finalize(state)
            self._emit(
                state.spec.display_label,
                chips_done,
                chips_total,
                chips_executed,
                started,
                done=False,
            )

        if tasks:
            if self.jobs == 1:
                for index, shard in tasks:
                    shard_started = time.perf_counter()
                    counts = worker.run_shard(specs[index], shard)
                    absorb(
                        index, shard, counts,
                        (time.perf_counter() - shard_started) * 1e6,
                    )
            else:
                with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(tasks))
                ) as pool:
                    futures = {
                        pool.submit(_timed_run_shard, specs[index], shard): (index, shard)
                        for index, shard in tasks
                    }
                    pending = set(futures)
                    while pending:
                        finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                        for future in finished:
                            index, shard = futures[future]
                            counts, dur_us = future.result()
                            absorb(index, shard, counts, dur_us)

        elapsed = time.perf_counter() - started
        if chips_executed and elapsed > 0:
            chips_rate.set(chips_executed / elapsed)
        label = specs[0].display_label if len(specs) == 1 else f"{len(specs)} specs"
        self._emit(label, chips_done, chips_total, chips_executed, started, done=True)
        return results  # type: ignore[return-value]  # every slot is filled above

    # ------------------------------------------------------------------
    def _finalize(self, state: _SpecState) -> EngineResult:
        if self.cache is not None:
            self.cache.store_result(state.spec, state.counts)
        return EngineResult(
            spec=state.spec,
            counts=state.counts,
            from_cache=False,
            shards_executed=state.shards_executed,
            shards_resumed=state.shards_resumed,
        )

    def _emit(
        self,
        label: str,
        chips_done: int,
        chips_total: int,
        chips_executed: int,
        started: float,
        done: bool,
    ) -> None:
        if self.progress is None:
            return
        self.progress(
            ProgressEvent(
                label=label,
                chips_done=chips_done,
                chips_total=chips_total,
                chips_executed=chips_executed,
                elapsed_seconds=time.perf_counter() - started,
                done=done,
            )
        )
