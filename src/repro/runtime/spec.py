"""Experiment specifications and deterministic shard plans.

An :class:`ExperimentSpec` is the complete, serialisable description of
one Monte-Carlo population: which link to build (scheme + decoder
policy), how many chips and messages, the spread and margin model, and
a :class:`~repro.utils.rng.SeedPlan` pinning every chip's substreams.
Because chip ``i`` always consumes seed-plan children ``2i``/``2i + 1``,
any partition of ``range(n_chips)`` — the :class:`ShardPlan` — produces
bit-identical counts regardless of shard size, execution order, or the
number of worker processes.

The spec's canonical dict (:meth:`ExperimentSpec.to_dict`) doubles as
the content-addressed cache identity: :meth:`ExperimentSpec.config_hash`
is the SHA-256 of its sorted JSON plus the cache schema version and the
code version, so a cache entry can never be served to a run it does not
exactly describe.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Tuple

from repro._version import __version__
from repro.ppv.margins import MarginModel
from repro.ppv.spread import SpreadSpec
from repro.utils.rng import SeedPlan

#: Bump when the cached payload layout or the count semantics change.
#: v2: specs carry a ``backend`` field, so shards cached by runs pinned
#: to one kernel backend are never served to runs pinned to another.
CACHE_SCHEMA_VERSION = 2

#: Default chips per shard: small enough that 1000-chip runs spread over
#: many workers, large enough that per-task dispatch overhead stays
#: negligible against the ~0.4 ms/chip simulation cost.
DEFAULT_SHARD_SIZE = 64


def spec_config_hash(spec) -> str:
    """Content-addressed identity shared by every spec kind.

    SHA-256 of the spec's canonical dict plus the cache schema version
    and the code version — any spec exposing ``to_dict()`` (and a
    distinct ``kind`` inside it) gets cache entries that can never be
    served to a run they do not exactly describe.
    """
    payload = {
        "spec": spec.to_dict(),
        "cache_schema": CACHE_SCHEMA_VERSION,
        "code_version": __version__,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ExperimentSpec:
    """One scheme's Monte-Carlo population, fully pinned down."""

    #: Workload kind dispatched by :func:`repro.runtime.worker.run_shard`.
    kind = "link-transmission"

    scheme: str
    n_chips: int
    n_messages: int
    spread: SpreadSpec
    margin_model: MarginModel
    seed_plan: SeedPlan
    decoder_strategy: Optional[str] = None
    #: Decoder-policy ablation: replace the paired decoder with a
    #: ``SyndromeDecoder(max_correctable_weight=...)`` (the paper's
    #: bounded-distance "flagging" mode).
    bounded_syndrome_weight: Optional[int] = None
    #: Kernel backend the shard runners decode with (``None`` = ambient
    #: default).  Part of the cache identity: all backends are
    #: bit-identical by contract, but a cached count must record the
    #: engine that produced it so a contract violation can never be
    #: masked by a cache hit from a different backend.
    backend: Optional[str] = None
    #: Display name for progress reporting; not part of the cache identity.
    label: Optional[str] = None

    def __post_init__(self):
        if self.n_chips < 0:
            raise ValueError(f"n_chips must be non-negative, got {self.n_chips}")
        if self.n_messages < 1:
            raise ValueError(f"n_messages must be positive, got {self.n_messages}")

    @property
    def display_label(self) -> str:
        return self.label or self.scheme

    def to_dict(self) -> dict:
        """Canonical (JSON-stable) description — the cache identity."""
        return {
            "kind": self.kind,
            "scheme": self.scheme,
            "n_chips": self.n_chips,
            "n_messages": self.n_messages,
            "spread": {
                "fraction": self.spread.fraction,
                "distribution": self.spread.distribution,
            },
            "margin_model": {
                "margins": {
                    name: float(value)
                    for name, value in sorted(self.margin_model.margins.items())
                },
                "eps_max": self.margin_model.eps_max,
                "gamma": self.margin_model.gamma,
                "spurious_ratio": self.margin_model.spurious_ratio,
                "fallback_margin": self.margin_model.fallback_margin,
            },
            "seed_plan": self.seed_plan.to_dict(),
            "decoder_strategy": self.decoder_strategy,
            "bounded_syndrome_weight": self.bounded_syndrome_weight,
            "backend": self.backend,
        }

    def config_hash(self) -> str:
        return spec_config_hash(self)


@dataclass(frozen=True)
class Shard:
    """A half-open chip range ``[start, stop)`` of one spec's population."""

    start: int
    stop: int

    def __post_init__(self):
        if not 0 <= self.start <= self.stop:
            raise ValueError(f"invalid shard range [{self.start}, {self.stop})")

    @property
    def n_chips(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of ``range(n_chips)`` into shards.

    The plan depends only on ``n_chips`` and ``shard_size`` — never on
    the worker count — so checkpoints written by an interrupted 8-worker
    run are resumed exactly by a later 2-worker (or inline) run.
    """

    n_chips: int
    shards: Tuple[Shard, ...]

    @classmethod
    def split(cls, n_chips: int, shard_size: int = DEFAULT_SHARD_SIZE) -> "ShardPlan":
        if n_chips < 0:
            raise ValueError(f"n_chips must be non-negative, got {n_chips}")
        if shard_size < 1:
            raise ValueError(f"shard_size must be positive, got {shard_size}")
        shards = tuple(
            Shard(start, min(start + shard_size, n_chips))
            for start in range(0, n_chips, shard_size)
        )
        return cls(n_chips=n_chips, shards=shards)
