"""Progress and throughput reporting for engine runs.

The engine emits :class:`ProgressEvent`\\ s as shards complete; a
progress callback is any callable taking one event.
:class:`ThroughputReporter` is the stderr implementation the CLI uses:
on a TTY it redraws a single status line as shards land, otherwise it
stays quiet until the final summary, so piped/captured output sees
exactly one ``chips/s`` line per engine run.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Optional, TextIO


@dataclass(frozen=True)
class ProgressEvent:
    """A snapshot of one ``run_many`` call's progress."""

    label: str           # spec label of the shard that just landed
    chips_done: int      # chips accounted for (cached + resumed + executed)
    chips_total: int     # population size across all specs in the run
    chips_executed: int  # chips actually simulated this run
    elapsed_seconds: float
    done: bool = False

    @property
    def chips_per_second(self) -> float:
        """Execution throughput (cached/resumed chips excluded)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.chips_executed / self.elapsed_seconds


class ThroughputReporter:
    """Render progress events as a chips/sec status line on a stream."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval_seconds: float = 0.25,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_seconds = min_interval_seconds
        self._last_emit = 0.0
        self._line_open = False

    def _format(self, event: ProgressEvent) -> str:
        rate = event.chips_per_second
        rate_text = f"{rate / 1000:.1f}k" if rate >= 10_000 else f"{rate:.0f}"
        return (
            f"[{event.label}] {event.chips_done}/{event.chips_total} chips"
            f" | {event.chips_executed} simulated"
            f" | {rate_text} chips/s"
        )

    def __call__(self, event: ProgressEvent) -> None:
        interactive = getattr(self.stream, "isatty", lambda: False)()
        if event.done:
            if self._line_open:
                self.stream.write("\r\x1b[2K")
                self._line_open = False
            self.stream.write(self._format(event) + "\n")
            self.stream.flush()
            return
        if not interactive:
            return
        now = time.monotonic()
        if now - self._last_emit < self.min_interval_seconds:
            return
        self._last_emit = now
        self.stream.write("\r\x1b[2K" + self._format(event))
        self.stream.flush()
        self._line_open = True
