"""SEC-DED memory-controller frontend over the registry codes.

Models the LiteDRAM-style ECC frontend (``litedram/frontend/ecc.py``):
every stored memory line is one codeword of a registry
:class:`~repro.coding.linear.LinearBlockCode`.  Whole-line writes
encode straight through the batch kernel; partial (byte-enable style)
writes cannot — the line must be read back, decoded, merged and
re-encoded, the read-modify-write path the LiteDRAM frontend calls out
as its limitation ("Byte enable not supported for writes").  Reads
decode with accumulating SEC (single-error-corrected) / DED
(detected-uncorrectable) counters, the software analogue of the
hardware ``sec``/``ded`` status signals.

Retention rot — bits decaying in the array between accesses — enters
through :meth:`MemoryEccFrontend.inject_rot` /
:meth:`MemoryEccFrontend.inject_flips` (the LiteDRAM frontend's
"errors injection" feature), and the :class:`~repro.memory.scrub.Scrubber`
sweeps it back out.  All mutation points accept an ``injector`` hook so
the chaos tests can flip bits *between* the read and store phases of an
RMW, reproducing the race the hardware limitation implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.coding.decoders.base import BatchDecodeResult, Decoder
from repro.coding.linear import LinearBlockCode
from repro.utils.rng import bernoulli_mask

#: Accounting paths a decode event can be charged to.
MEMORY_PATHS: Tuple[str, ...] = ("read", "rmw", "scrub")

#: Hard ceiling on lines per frontend, keeping stores comfortably in RAM.
MAX_MEMORY_LINES = 1 << 20


@dataclass
class PathCounters:
    """Accumulated SEC/DED accounting for one access path.

    Attributes
    ----------
    ops : int
        Decode events charged to this path (one per line decoded).
    sec : int
        Events where the decoder repaired at least one bit and did not
        flag the word — the hardware ``sec`` pulse.
    ded : int
        Detected-uncorrectable events — the hardware ``ded`` pulse.
    corrected_bits : int
        Total bits repaired across non-flagged events.
    """

    ops: int = 0
    sec: int = 0
    ded: int = 0
    corrected_bits: int = 0

    def charge(self, corrected: np.ndarray, detected: np.ndarray) -> None:
        """Accumulate one batch of decode outcomes into the counters."""
        corrected = np.asarray(corrected, dtype=np.int64)
        detected = np.asarray(detected, dtype=bool)
        self.ops += int(corrected.shape[0])
        self.sec += int(np.count_nonzero((corrected > 0) & ~detected))
        self.ded += int(np.count_nonzero(detected))
        self.corrected_bits += int(corrected[~detected].sum())

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot (telemetry / wire friendly)."""
        return {
            "ops": self.ops,
            "sec": self.sec,
            "ded": self.ded,
            "corrected_bits": self.corrected_bits,
        }


def _fresh_counters() -> Dict[str, PathCounters]:
    return {path: PathCounters() for path in MEMORY_PATHS}


@dataclass
class MemoryCounters:
    """Full SEC/DED ledger of a frontend, one ledger row per path.

    Attributes
    ----------
    paths : dict
        ``path name -> `` :class:`PathCounters` for each entry of
        :data:`MEMORY_PATHS`.
    rot_bits : int
        Total raw bits flipped into the store by rot injection.
    scrubbed_lines : int
        Lines swept by the scrubber (repaired or not).
    repaired_lines : int
        Lines the scrubber rewrote with a corrected codeword.
    """

    paths: Dict[str, PathCounters] = field(default_factory=_fresh_counters)
    rot_bits: int = 0
    scrubbed_lines: int = 0
    repaired_lines: int = 0

    def to_dict(self) -> Dict[str, object]:
        """Nested plain-dict snapshot of every counter."""
        return {
            "paths": {name: ctr.to_dict() for name, ctr in self.paths.items()},
            "rot_bits": self.rot_bits,
            "scrubbed_lines": self.scrubbed_lines,
            "repaired_lines": self.repaired_lines,
        }

    def totals(self) -> Dict[str, int]:
        """SEC/DED/corrected-bits summed over every path."""
        return {
            "ops": sum(c.ops for c in self.paths.values()),
            "sec": sum(c.sec for c in self.paths.values()),
            "ded": sum(c.ded for c in self.paths.values()),
            "corrected_bits": sum(c.corrected_bits for c in self.paths.values()),
        }


class MemoryEccFrontend:
    """ECC frontend mapping line read/write transactions onto one code.

    The store holds ``lines`` codewords of ``code`` as a ``(lines, n)``
    uint8 bit array.  All paths run through the batched kernels
    (:meth:`~repro.coding.linear.LinearBlockCode.encode_batch`,
    :meth:`~repro.coding.decoders.base.Decoder.decode_batch_detailed`),
    so throughput and bit-exactness track the rest of the repo; the
    scalar :class:`~repro.memory.reference.ReferenceMemory` replays the
    same transactions word-by-word and must agree exactly.

    Parameters
    ----------
    code:
        Any registry code; one stored line is one codeword.
    decoder:
        Decoder for ``code``; drives reads, RMW read phases and scrub.
    lines:
        Number of addressable lines, ``1 <= lines <= MAX_MEMORY_LINES``.
    injector:
        Optional fault hook ``injector(event, addresses)`` called with
        ``event`` in ``{"write", "rmw"}`` *after* any read phase and
        *before* the store phase of that transaction.  The hook may call
        :meth:`inject_flips` to model rot racing an in-flight RMW.
    """

    def __init__(
        self,
        code: LinearBlockCode,
        decoder: Decoder,
        lines: int,
        injector: Optional[Callable[[str, np.ndarray], None]] = None,
    ):
        if decoder.code is not code:
            # Same object not required, but the geometries must agree.
            if (decoder.code.n, decoder.code.k) != (code.n, code.k):
                raise ValueError(
                    f"decoder is for an ({decoder.code.n},{decoder.code.k}) code, "
                    f"frontend stores ({code.n},{code.k}) lines"
                )
        if not 1 <= int(lines) <= MAX_MEMORY_LINES:
            raise ValueError(
                f"lines must lie in [1, {MAX_MEMORY_LINES}], got {lines}"
            )
        self.code = code
        self.decoder = decoder
        self.lines = int(lines)
        self.injector = injector
        self.counters = MemoryCounters()
        # Line a holds the codeword protecting line a's message; the
        # all-zero word is a codeword of every linear code, so a fresh
        # array decodes clean.
        self._store = np.zeros((self.lines, code.n), dtype=np.uint8)

    # -- address / payload validation ----------------------------------
    def _check_addresses(self, addresses) -> np.ndarray:
        addrs = np.asarray(addresses, dtype=np.int64).reshape(-1)
        if addrs.size and (addrs.min() < 0 or addrs.max() >= self.lines):
            raise IndexError(
                f"addresses must lie in [0, {self.lines}), got "
                f"[{addrs.min()}, {addrs.max()}]"
            )
        return addrs

    def _check_payload(self, addrs: np.ndarray, rows, width: int, what: str):
        arr = np.asarray(rows, dtype=np.uint8) & 1
        if arr.ndim != 2 or arr.shape != (addrs.shape[0], width):
            raise ValueError(
                f"expected ({addrs.shape[0]}, {width}) {what} rows, "
                f"got {np.asarray(rows).shape}"
            )
        return arr

    # -- transactions --------------------------------------------------
    def write(self, addresses, messages) -> None:
        """Whole-line write: encode ``(count, k)`` messages and store.

        The fast path — no decode, no SEC/DED exposure.  Duplicate
        addresses resolve in row order (the last write wins), matching
        a memory port serialising same-address beats.
        """
        addrs = self._check_addresses(addresses)
        rows = self._check_payload(addrs, messages, self.code.k, "message")
        codewords = self.code.encode_batch(rows)
        if self.injector is not None:
            self.injector("write", addrs)
        self._store[addrs] = codewords

    def write_partial(self, addresses, messages, masks) -> BatchDecodeResult:
        """Partial write via read-modify-write: the LiteDRAM limitation.

        Only the message bits where ``masks`` is 1 are replaced; the
        rest must be recovered by decoding the stored line first, so a
        partial write pays a full decode (and its SEC/DED exposure,
        charged to the ``rmw`` path) plus a re-encode.  Rot arriving
        between the read and the store phases is silently overwritten —
        the race the ``injector`` hook exists to provoke.

        Returns the read-phase decode outcomes so callers can observe
        whether the merge was built on a corrected or poisoned line.
        """
        addrs = self._check_addresses(addresses)
        rows = self._check_payload(addrs, messages, self.code.k, "message")
        mask = self._check_payload(addrs, masks, self.code.k, "mask")
        result = self.decoder.decode_batch_detailed(self._store[addrs])
        self.counters.paths["rmw"].charge(
            result.corrected_errors, result.detected_uncorrectable
        )
        merged = np.where(mask.astype(bool), rows, result.messages & 1)
        codewords = self.code.encode_batch(merged)
        if self.injector is not None:
            self.injector("rmw", addrs)
        self._store[addrs] = codewords
        return result

    def read(self, addresses) -> BatchDecodeResult:
        """Decode the stored lines at ``addresses`` (non-repairing).

        Charges the ``read`` path counters and returns the full batch
        decode result.  Like the hardware frontend, a read does *not*
        write the corrected word back — scrubbing is the
        :class:`~repro.memory.scrub.Scrubber`'s job, which is exactly
        the traffic/scrub contention the service models.
        """
        addrs = self._check_addresses(addresses)
        result = self.decoder.decode_batch_detailed(self._store[addrs])
        self.counters.paths["read"].charge(
            result.corrected_errors, result.detected_uncorrectable
        )
        return result

    # -- fault surface -------------------------------------------------
    def inject_flips(self, addresses, flip_masks) -> int:
        """XOR ``(count, n)`` flip masks into the stored lines.

        The deterministic fault primitive: tests hand it exact masks
        (i.i.d. rot, Gilbert–Elliott bursts, adversarial patterns) and
        derive exact expected SEC/DED counts.  Returns the number of
        bits flipped.  Duplicate addresses each apply in row order.
        """
        addrs = self._check_addresses(addresses)
        mask = self._check_payload(addrs, flip_masks, self.code.n, "flip")
        flipped = int(mask.sum())
        for row, flips in zip(addrs, mask):
            self._store[row] ^= flips
        self.counters.rot_bits += flipped
        return flipped

    def inject_rot(
        self, rng: np.random.Generator, rate: float, addresses=None
    ) -> int:
        """Flip each stored bit independently with probability ``rate``.

        Models retention rot accumulating between scrub passes.  Draws
        exactly one uniform block of the affected shape from ``rng``
        when ``0 < rate`` (and none when ``rate == 0``), so a mirror
        holding an identically-seeded generator reproduces the flips
        bit-for-bit.  Returns the number of bits flipped.
        """
        addrs = (
            np.arange(self.lines, dtype=np.int64)
            if addresses is None
            else self._check_addresses(addresses)
        )
        mask = bernoulli_mask(rng, rate, (addrs.shape[0], self.code.n))
        return self.inject_flips(addrs, mask.astype(np.uint8))

    # -- introspection -------------------------------------------------
    def raw_lines(self, addresses) -> np.ndarray:
        """Copy of the stored codeword bits at ``addresses`` (no decode)."""
        return self._store[self._check_addresses(addresses)].copy()

    def store_snapshot(self) -> np.ndarray:
        """Copy of the whole ``(lines, n)`` stored bit array."""
        return self._store.copy()

    def __repr__(self) -> str:
        totals = self.counters.totals()
        return (
            f"<MemoryEccFrontend lines={self.lines} n={self.code.n} "
            f"k={self.code.k} sec={totals['sec']} ded={totals['ded']}>"
        )
