"""Background scrubber: sweep stored lines and repair correctable rot.

Retention rot is cumulative — a line left alone long enough collects a
second flip and crosses from correctable (SEC) to detected-
uncorrectable (DED) territory.  A memory controller therefore *scrubs*:
a background walker decodes a few lines per step, rewrites any
correctably-rotted line with its repaired codeword, and wraps around.
``lines_per_step`` is the contention knob — how much of the port the
scrubber steals from foreground traffic per step — which the ``memory``
loadgen scenario sweeps against traffic interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.memory.frontend import MemoryEccFrontend

#: Upper bound on one step's sweep width (one full pass).
MAX_SCRUB_STEP = 1 << 20


@dataclass(frozen=True)
class ScrubReport:
    """Outcome of one scrubber step.

    Attributes
    ----------
    start : int
        First line index swept (pre-step scrubber position).
    count : int
        Lines decoded this step.
    repaired_lines : int
        Lines rewritten with a corrected codeword (SEC events).
    corrected_bits : int
        Bits repaired across those lines.
    detected : int
        Lines flagged detected-uncorrectable; left untouched for the
        OS/refresh layer, exactly like the hardware ``ded`` interrupt.
    """

    start: int
    count: int
    repaired_lines: int
    corrected_bits: int
    detected: int

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict form (wire / JSON friendly)."""
        return {
            "start": self.start,
            "count": self.count,
            "repaired_lines": self.repaired_lines,
            "corrected_bits": self.corrected_bits,
            "detected": self.detected,
        }


class Scrubber:
    """Position-tracking sweep over a frontend's stored lines.

    Each :meth:`step` decodes the next ``lines_per_step`` lines
    (wrapping at the end of the store), rewrites every line the decoder
    repaired, charges the frontend's ``scrub`` path counters, and
    advances.  Detected-uncorrectable lines are *not* rewritten — the
    decoder holds no trustworthy codeword for them — so scrubbing is
    idempotent: a second pass over an already-clean window repairs
    nothing.

    Parameters
    ----------
    frontend:
        The :class:`~repro.memory.frontend.MemoryEccFrontend` to sweep.
    lines_per_step:
        Sweep width per :meth:`step`; the traffic/scrub contention
        knob.  Must lie in ``[1, MAX_SCRUB_STEP]``.
    """

    def __init__(self, frontend: MemoryEccFrontend, lines_per_step: int = 8):
        if not 1 <= int(lines_per_step) <= MAX_SCRUB_STEP:
            raise ValueError(
                f"lines_per_step must lie in [1, {MAX_SCRUB_STEP}], "
                f"got {lines_per_step}"
            )
        self.frontend = frontend
        self.lines_per_step = int(lines_per_step)
        self.position = 0

    def window(self, count: int = None) -> np.ndarray:
        """Line indices the next step of width ``count`` would sweep."""
        if count is None:
            count = self.lines_per_step
        count = min(int(count), self.frontend.lines)
        if count < 1:
            raise ValueError(f"scrub width must be >= 1, got {count}")
        return (
            self.position + np.arange(count, dtype=np.int64)
        ) % self.frontend.lines

    def step(self, count: int = None) -> ScrubReport:
        """Sweep the next window: decode, repair, advance.

        ``count`` overrides ``lines_per_step`` for this step only (the
        service's scrub-step opcode passes it per request).  Repairs
        write the decoder's codeword estimate back for every non-flagged
        line; zero-error lines rewrite their own bits, so only genuinely
        rotted lines count as repaired.
        """
        frontend = self.frontend
        addrs = self.window(count)
        stored = frontend._store[addrs]
        result = frontend.decoder.decode_batch_detailed(stored)
        frontend.counters.paths["scrub"].charge(
            result.corrected_errors, result.detected_uncorrectable
        )
        repairable = ~result.detected_uncorrectable
        repaired = repairable & (result.corrected_errors > 0)
        if repairable.any():
            frontend._store[addrs[repairable]] = result.codewords[repairable]
        frontend.counters.scrubbed_lines += int(addrs.shape[0])
        frontend.counters.repaired_lines += int(np.count_nonzero(repaired))
        report = ScrubReport(
            start=int(self.position),
            count=int(addrs.shape[0]),
            repaired_lines=int(np.count_nonzero(repaired)),
            corrected_bits=int(result.corrected_errors[repairable].sum()),
            detected=int(np.count_nonzero(result.detected_uncorrectable)),
        )
        self.position = int((self.position + addrs.shape[0]) % frontend.lines)
        return report

    def sweep(self) -> ScrubReport:
        """One full pass over every line, from the current position."""
        return self.step(self.frontend.lines)

    def __repr__(self) -> str:
        return (
            f"<Scrubber position={self.position} "
            f"lines_per_step={self.lines_per_step} "
            f"lines={self.frontend.lines}>"
        )
