"""Memory-controller ECC frontend: SEC-DED lines, RMW, and scrubbing.

ROADMAP item 4: model the paper's encoders protecting a memory port,
in the style of LiteDRAM's ``frontend/ecc.py``.  The pieces:

* :class:`~repro.memory.frontend.MemoryEccFrontend` — whole-line
  writes encode, partial writes take the read-modify-write path (the
  LiteDRAM limitation), reads decode with accumulating SEC/DED
  counters, and an injector hook + :meth:`inject_flips` /
  :meth:`inject_rot` form the deterministic fault surface;
* :class:`~repro.memory.scrub.Scrubber` — a position-tracking
  background sweep repairing correctable rot, with a
  ``lines_per_step`` traffic/scrub contention knob;
* :class:`~repro.memory.reference.ReferenceMemory` — the scalar
  word-at-a-time twin that pins the exact SEC/DED accounting.

The service layer exposes all of this as a ``memory`` session type
(``repro serve`` + ``repro loadgen --scenario memory``), and the
``retention`` Monte-Carlo experiment (``repro memory``) sweeps
retention-rot rates on the shared engine.
"""

from repro.memory.frontend import (
    MAX_MEMORY_LINES,
    MEMORY_PATHS,
    MemoryCounters,
    MemoryEccFrontend,
    PathCounters,
)
from repro.memory.reference import ReferenceMemory
from repro.memory.scrub import ScrubReport, Scrubber

__all__ = [
    "MAX_MEMORY_LINES",
    "MEMORY_PATHS",
    "MemoryCounters",
    "MemoryEccFrontend",
    "PathCounters",
    "ReferenceMemory",
    "ScrubReport",
    "Scrubber",
]
