"""Scalar reference model for the memory frontend's exact accounting.

:class:`ReferenceMemory` replays the same transaction stream as
:class:`~repro.memory.frontend.MemoryEccFrontend` one word at a time
through the decoder's *scalar* :meth:`~repro.coding.decoders.base.Decoder.decode`
path — the path every vectorised kernel in this repo is tested
against.  Stores, decoded messages and every SEC/DED counter must
agree bit-for-bit and count-for-count with the batched frontend; the
fault-injection tests in ``tests/test_memory.py`` assert exactly that,
and the ``memory`` loadgen scenario runs one as a client-side mirror to
prove the service's accounting exact over the wire.

Random draws (``inject_rot``) consume one uniform block of the affected
shape, identical to the frontend, so a reference seeded like the
frontend stays flip-for-flip aligned.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.coding.decoders.base import Decoder
from repro.coding.linear import LinearBlockCode
from repro.memory.frontend import MemoryCounters
from repro.utils.rng import bernoulli_mask


class ReferenceMemory:
    """Word-at-a-time twin of the batched memory frontend.

    Implements the same operations with the same counter semantics
    (see :class:`~repro.memory.frontend.PathCounters`), but every
    decode is a scalar :meth:`~repro.coding.decoders.base.Decoder.decode`
    call and every store update is an explicit Python loop.  Slow by
    design — it exists to be obviously correct.

    Parameters
    ----------
    code:
        The code protecting each line.
    decoder:
        Decoder for ``code``; only its scalar path is used.
    lines:
        Number of addressable lines.
    """

    def __init__(self, code: LinearBlockCode, decoder: Decoder, lines: int):
        if int(lines) < 1:
            raise ValueError(f"lines must be >= 1, got {lines}")
        self.code = code
        self.decoder = decoder
        self.lines = int(lines)
        self.counters = MemoryCounters()
        self.scrub_position = 0
        self._store = [
            np.zeros(code.n, dtype=np.uint8) for _ in range(self.lines)
        ]

    def _decode_line(self, address: int, path: str):
        """Scalar-decode one stored line and charge ``path`` counters."""
        result = self.decoder.decode(self._store[address])
        counters = self.counters.paths[path]
        counters.ops += 1
        if result.detected_uncorrectable:
            counters.ded += 1
        else:
            if result.corrected_errors > 0:
                counters.sec += 1
            counters.corrected_bits += result.corrected_errors
        return result

    # -- transactions --------------------------------------------------
    def write(self, addresses, messages) -> None:
        """Whole-line write: encode each message and store it."""
        for address, message in zip(np.asarray(addresses).reshape(-1), messages):
            self._store[int(address)] = np.asarray(
                self.code.encode(np.asarray(message, dtype=np.uint8) & 1),
                dtype=np.uint8,
            )

    def write_partial(self, addresses, messages, masks) -> List[Tuple[int, bool]]:
        """Scalar RMW: decode, merge masked bits, re-encode, store.

        Returns ``(corrected_errors, detected)`` per line, mirroring
        the read-phase outcomes the frontend reports.
        """
        outcomes = []
        for address, message, mask in zip(
            np.asarray(addresses).reshape(-1), messages, masks
        ):
            address = int(address)
            result = self._decode_line(address, "rmw")
            merged = np.where(
                np.asarray(mask, dtype=bool),
                np.asarray(message, dtype=np.uint8) & 1,
                np.asarray(result.message, dtype=np.uint8) & 1,
            )
            self._store[address] = np.asarray(
                self.code.encode(merged), dtype=np.uint8
            )
            outcomes.append(
                (int(result.corrected_errors), bool(result.detected_uncorrectable))
            )
        return outcomes

    def read(self, addresses):
        """Scalar decode of each line; returns the DecodeResult list."""
        return [
            self._decode_line(int(address), "read")
            for address in np.asarray(addresses).reshape(-1)
        ]

    # -- fault surface -------------------------------------------------
    def inject_flips(self, addresses, flip_masks) -> int:
        """XOR flip rows into the store, line by line."""
        flipped = 0
        for address, flips in zip(np.asarray(addresses).reshape(-1), flip_masks):
            row = np.asarray(flips, dtype=np.uint8) & 1
            self._store[int(address)] = self._store[int(address)] ^ row
            flipped += int(row.sum())
        self.counters.rot_bits += flipped
        return flipped

    def inject_rot(
        self, rng: np.random.Generator, rate: float, addresses=None
    ) -> int:
        """Draw-compatible i.i.d. rot: one uniform block, then flips."""
        addrs = (
            np.arange(self.lines, dtype=np.int64)
            if addresses is None
            else np.asarray(addresses, dtype=np.int64).reshape(-1)
        )
        mask = bernoulli_mask(rng, rate, (addrs.shape[0], self.code.n))
        return self.inject_flips(addrs, mask.astype(np.uint8))

    # -- scrubbing -----------------------------------------------------
    def scrub_step(self, count: Optional[int] = None):
        """Scalar twin of :meth:`~repro.memory.scrub.Scrubber.step`.

        Returns a dict with the same keys as
        :meth:`~repro.memory.scrub.ScrubReport.to_dict`.
        """
        if count is None:
            count = self.lines
        count = min(int(count), self.lines)
        start = self.scrub_position
        repaired_lines = corrected_bits = detected = 0
        for offset in range(count):
            address = (start + offset) % self.lines
            result = self._decode_line(address, "scrub")
            if result.detected_uncorrectable:
                detected += 1
                continue
            if result.codeword is not None:
                if result.corrected_errors > 0:
                    repaired_lines += 1
                    corrected_bits += int(result.corrected_errors)
                self._store[address] = np.asarray(
                    result.codeword, dtype=np.uint8
                )
        self.counters.scrubbed_lines += count
        self.counters.repaired_lines += repaired_lines
        self.scrub_position = (start + count) % self.lines
        return {
            "start": start,
            "count": count,
            "repaired_lines": repaired_lines,
            "corrected_bits": corrected_bits,
            "detected": detected,
        }

    # -- introspection -------------------------------------------------
    def raw_lines(self, addresses) -> np.ndarray:
        """Stored codeword bits at ``addresses`` as a ``(count, n)`` array."""
        return np.array(
            [self._store[int(a)] for a in np.asarray(addresses).reshape(-1)],
            dtype=np.uint8,
        )

    def store_snapshot(self) -> np.ndarray:
        """The whole store as a ``(lines, n)`` uint8 array."""
        return np.array(self._store, dtype=np.uint8)

    def __repr__(self) -> str:
        totals = self.counters.totals()
        return (
            f"<ReferenceMemory lines={self.lines} "
            f"sec={totals['sec']} ded={totals['ded']}>"
        )
