"""repro — reproduction of "Lightweight Error-Correction Code Encoders in
Superconducting Electronic Systems" (SOCC 2025, arXiv:2509.00962).

The package implements, from scratch:

* the three lightweight ECC encoders of the paper — Hamming(7,4),
  extended Hamming(8,4) and Reed-Muller RM(1,3) — both as algebra
  (:mod:`repro.coding`) and as synthesised RSFQ netlists
  (:mod:`repro.encoders`, :mod:`repro.sfq`);
* the SFQ circuit substrate: calibrated cell library, netlist graph,
  logic synthesis with path balancing and splitter/clock-tree insertion,
  an event-driven pulse simulator, and a waveform layer standing in for
  JoSIM;
* process-parameter-variation modelling (:mod:`repro.ppv`) and the
  cryogenic output data link of the paper's Fig. 1 (:mod:`repro.link`,
  :mod:`repro.system`);
* experiment drivers regenerating every table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import get_code, get_decoder
    code = get_code("hamming84")
    cw = code.encode("1011")          # -> 01100110, as in the paper's Fig. 3
    decoder = get_decoder(code)
    result = decoder.decode(cw)
"""

from repro._version import __version__
from repro.coding import (
    LinearBlockCode,
    get_code,
    get_decoder,
    hamming74_paper,
    hamming84_paper,
    rm13_paper,
)

__all__ = [
    "__version__",
    "LinearBlockCode",
    "get_code",
    "get_decoder",
    "hamming74_paper",
    "hamming84_paper",
    "rm13_paper",
]
